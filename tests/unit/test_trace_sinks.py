"""Unit tests of the trace-sink layer (``core/trace.py`` + ``core/trace_disk.py``).

The cross-sink bit-exactness and bounded-memory guarantees on real
workloads live in ``tests/integration/test_trace_contract.py`` and
``tests/integration/test_trace_streaming.py``; this file covers the sink
mechanics directly: chunk rollover, index bookkeeping, filtered streaming,
fresh-vs-resume lifecycle, read-only attach, and the snapshot
encode-cache regression.
"""

import gzip
import json
import os

import pytest

from repro.core import trace as trace_module
from repro.core import trace_disk as trace_disk_module
from repro.core.trace import MemoryTraceSink, Tracer, decode_event, encode_event
from repro.core.trace_disk import (
    DiskTraceSink,
    TraceDirError,
    machine_trace_dir,
    resolve_trace_dir,
)


def _record_n(tracer, n, category="mem_issue", node=0, start_cycle=0):
    for i in range(n):
        tracer.record(start_cycle + i, node, category, req=i, address=0x100 + i)


# -------------------------------------------------------------------- disk sink


def test_disk_sink_chunks_and_index(tmp_path):
    sink = DiskTraceSink(tmp_path / "t", chunk_events=4)
    tracer = Tracer(sink=sink)
    _record_n(tracer, 10)
    # 10 events, chunk size 4: two full chunks flushed, two in the tail.
    assert len(tracer) == 10
    index = json.loads((tmp_path / "t" / "index.json").read_text())
    assert index["format"] == "repro-trace"
    assert index["total_events"] == 8
    assert [chunk["events"] for chunk in index["chunks"]] == [4, 4]
    tracer.flush()
    index = json.loads((tmp_path / "t" / "index.json").read_text())
    assert index["total_events"] == 10
    assert [chunk["events"] for chunk in index["chunks"]] == [4, 4, 2]
    assert index["chunks"][0]["categories"] == {"mem_issue": 4}
    assert index["chunks"][0]["nodes"] == {"0": 4}
    assert [event.req for event in tracer.iter_filter()] == list(range(10))


def test_disk_sink_round_trips_every_row(tmp_path):
    tracer = Tracer(sink=DiskTraceSink(tmp_path, chunk_events=3))
    tracer.record(1, 0, "send", msg=1, dest=3, priority=0)
    tracer.record(2, 1, "reg_write", reg="i5", origin="memory")
    tracer.record(3, 2, "halt", cluster=0, slot=1)
    tracer.record(9, 0, "mark", marker=7, pc=0x40)
    tracer.flush()
    reopened = Tracer.open(tmp_path)
    original = [encode_event(event) for event in tracer.iter_filter()]
    stored = [encode_event(event) for event in reopened.iter_filter()]
    assert stored == original


def test_disk_sink_filters_match_memory_sink(tmp_path):
    memory = Tracer()
    disk = Tracer(sink=DiskTraceSink(tmp_path, chunk_events=5))
    for tracer in (memory, disk):
        for i in range(23):
            tracer.record(i, i % 3, "cache_hit" if i % 2 else "cache_miss", req=i)
    disk.flush()
    for kwargs in (
        {"category": "cache_hit"},
        {"node": 2},
        {"since": 11},
        {"category": "cache_miss", "node": 1, "since": 4},
        {"predicate": lambda e: e.req % 5 == 0},
    ):
        expected = [encode_event(e) for e in memory.filter(**kwargs)]
        got = [encode_event(e) for e in disk.iter_filter(**kwargs)]
        assert got == expected, kwargs
    assert disk.count("cache_hit") == memory.count("cache_hit")
    assert disk.first("cache_hit", req=7).cycle == memory.first("cache_hit", req=7).cycle
    assert disk.last("cache_miss").cycle == memory.last("cache_miss").cycle
    assert disk.dump(["cache_hit"]) == memory.dump(["cache_hit"])


def test_disk_sink_chunk_bytes_are_deterministic(tmp_path):
    chunks = {}
    for name in ("a", "b"):
        tracer = Tracer(sink=DiskTraceSink(tmp_path / name, chunk_events=4))
        _record_n(tracer, 4)
        chunks[name] = (tmp_path / name / "chunk-00000.jsonl.gz").read_bytes()
    assert chunks["a"] == chunks["b"]


def test_disk_sink_fresh_append_wipes_previous_run(tmp_path):
    first = Tracer(sink=DiskTraceSink(tmp_path, chunk_events=2))
    _record_n(first, 6)
    first.flush()
    assert len(Tracer.open(tmp_path)) == 6
    # A second run pointed at the same directory starts a fresh trace on
    # its first append (not at construction: a snapshot restore may still
    # re-attach between the two).
    second = Tracer(sink=DiskTraceSink(tmp_path, chunk_events=2))
    assert len(Tracer.open(tmp_path)) == 6
    second.record(0, 0, "halt", cluster=0, slot=0)
    second.flush()
    reopened = Tracer.open(tmp_path)
    assert len(reopened) == 1
    assert [event.category for event in reopened.iter_filter()] == ["halt"]
    leftovers = [
        name for name in os.listdir(tmp_path)
        if name.startswith("chunk") and name > "chunk-00000.jsonl.gz"
    ]
    assert not leftovers


def test_disk_sink_readonly_refuses_writes(tmp_path):
    with pytest.raises(TraceDirError):
        DiskTraceSink(tmp_path / "missing", readonly=True)
    writer = Tracer(sink=DiskTraceSink(tmp_path, chunk_events=2))
    _record_n(writer, 2)
    reader = DiskTraceSink(tmp_path, readonly=True)
    with pytest.raises(TraceDirError):
        reader.append(next(writer.iter_filter()))
    with pytest.raises(TraceDirError):
        reader.clear()


def test_disk_sink_restore_truncates_post_snapshot_chunks(tmp_path):
    tracer = Tracer(sink=DiskTraceSink(tmp_path, chunk_events=2))
    _record_n(tracer, 5)
    state = tracer.state_dict()  # 2 chunks flushed + 1 tail event
    assert state["flushed_chunks"] == 2 and len(state["tail"]) == 1
    _record_n(tracer, 5, start_cycle=5)  # the "lost" post-snapshot work
    tracer.flush()
    assert len(Tracer.open(tmp_path)) == 10

    resumed = Tracer(sink=DiskTraceSink(tmp_path, chunk_events=2))
    resumed.load_state_dict(state)
    assert len(resumed) == 5
    resumed.record(100, 0, "halt", cluster=0, slot=0)
    resumed.flush()
    reopened = Tracer.open(tmp_path)
    assert [event.cycle for event in reopened.iter_filter()] == [0, 1, 2, 3, 4, 100]


def test_disk_sink_restore_repoints_to_snapshot_directory(tmp_path):
    origin = Tracer(sink=DiskTraceSink(tmp_path / "origin", chunk_events=2))
    _record_n(origin, 3)
    state = origin.state_dict()
    # A machine restored from the snapshot constructs its sink somewhere
    # else (the next machine-N ordinal); restore must re-point it at the
    # snapshot's own directory.
    resumed = Tracer(sink=DiskTraceSink(tmp_path / "elsewhere", chunk_events=2))
    resumed.load_state_dict(state)
    assert resumed.sink.directory == str(tmp_path / "origin")
    resumed.flush()
    assert len(Tracer.open(tmp_path / "origin")) == 3
    assert not (tmp_path / "elsewhere").exists()


def test_disk_sink_tracks_peak_tail(tmp_path):
    sink = DiskTraceSink(tmp_path, chunk_events=8)
    tracer = Tracer(sink=sink)
    _record_n(tracer, 50)
    assert sink.peak_tail_events <= 8
    assert len(tracer) == 50


def test_disk_sink_stats(tmp_path):
    tracer = Tracer(sink=DiskTraceSink(tmp_path, chunk_events=4))
    _record_n(tracer, 6, category="send", node=1, start_cycle=10)
    stats = tracer.sink.stats()
    assert stats["events"] == 6
    assert stats["chunks"] == 1  # 2 tail events not yet flushed
    assert stats["categories"] == {"send": 6}
    assert stats["nodes"] == {"1": 6}
    assert (stats["first_cycle"], stats["last_cycle"]) == (10, 15)
    tracer.flush()
    assert tracer.sink.stats()["compressed_bytes"] > 0


def test_machine_trace_dir_ordinals_and_resolve(tmp_path):
    base = tmp_path / "run"
    first, second = machine_trace_dir(base), machine_trace_dir(base)
    assert os.path.basename(first) == "machine-0"
    assert os.path.basename(second) == "machine-1"
    tracer = Tracer(sink=DiskTraceSink(first, chunk_events=2))
    _record_n(tracer, 2)
    assert resolve_trace_dir(base) == first
    assert resolve_trace_dir(first) == first
    with pytest.raises(TraceDirError):
        resolve_trace_dir(base, machine=1)  # machine-1 never wrote


def test_index_rejects_foreign_and_future_formats(tmp_path):
    (tmp_path / "index.json").write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(TraceDirError):
        DiskTraceSink(tmp_path, readonly=True)
    (tmp_path / "index.json").write_text(
        json.dumps({"format": "repro-trace", "format_version": 999})
    )
    with pytest.raises(TraceDirError):
        DiskTraceSink(tmp_path, readonly=True)


def test_chunk_lines_are_plain_json(tmp_path):
    """The chunk format is the documented interface: one JSON row
    ``[cycle, node, category, info]`` per line, gzip member per chunk."""
    tracer = Tracer(sink=DiskTraceSink(tmp_path, chunk_events=3))
    _record_n(tracer, 3, category="xregwr", node=2)
    with gzip.open(tmp_path / "chunk-00000.jsonl.gz", "rt") as handle:
        rows = [json.loads(line) for line in handle]
    assert rows == [[i, 2, "xregwr", {"req": i, "address": 0x100 + i}] for i in range(3)]
    assert decode_event(rows[0]).category == "xregwr"


# ---------------------------------------------------------- memory-sink snapshot


def _counting_encode(monkeypatch):
    calls = []
    real = trace_module.encode_event

    def counted(event):
        calls.append(event)
        return real(event)

    monkeypatch.setattr(trace_module, "encode_event", counted)
    monkeypatch.setattr(trace_disk_module, "encode_event", counted)
    return calls


def test_memory_state_dict_shape_is_unchanged():
    """The memory sink's snapshot shape is the historical one — exactly
    ``{"enabled": ..., "events": [...]}`` — so existing snapshots and
    their goldens are untouched by the sink refactor."""
    tracer = Tracer()
    tracer.record(5, 1, "halt", cluster=0, slot=2)
    state = tracer.state_dict()
    assert list(state) == ["enabled", "events"]
    assert state == {"enabled": True, "events": [[5, 1, "halt", {"cluster": 0, "slot": 2}]]}


def test_restore_keeps_checkpointing_incremental(monkeypatch):
    """Regression: ``load_state_dict`` used to drop the encoded-event
    cache, making the first post-restore checkpoint re-encode the entire
    restored history instead of only new events."""
    source = Tracer()
    _record_n(source, 100)
    state = source.state_dict()

    restored = Tracer()
    restored.load_state_dict(state)
    restored.record(200, 0, "halt", cluster=0, slot=0)
    calls = _counting_encode(monkeypatch)
    after = restored.state_dict()
    assert len(after["events"]) == 101
    assert len(calls) == 1  # only the post-restore event; history came cached


def test_disk_restore_keeps_checkpointing_incremental(tmp_path, monkeypatch):
    """The same guarantee holds for the disk sink's unflushed tail: the
    restored rows are reused as the encoded cache, so the next
    ``state_dict`` encodes only events recorded since the restore."""
    source = Tracer(sink=DiskTraceSink(tmp_path, chunk_events=1000))
    _record_n(source, 50)
    state = source.state_dict()

    restored = Tracer(sink=DiskTraceSink(tmp_path, chunk_events=1000))
    restored.load_state_dict(state)
    restored.record(200, 0, "halt", cluster=0, slot=0)
    calls = _counting_encode(monkeypatch)
    after = restored.state_dict()
    assert len(after["tail"]) == 51
    assert len(calls) == 1  # only the post-restore event; history came cached


def test_memory_round_trip_state_is_reencoded_identically():
    source = Tracer()
    _record_n(source, 10)
    state = source.state_dict()
    restored = Tracer()
    restored.load_state_dict(state)
    assert restored.state_dict() == state
    assert isinstance(restored.sink, MemoryTraceSink)
