"""Unit tests for the memory subsystem: SECDED, SDRAM, page table, LTLB,
cache, guarded pointers and the integrated memory system."""

import pytest

from repro.events.records import EventType
from repro.memory.cache import InterleavedCache
from repro.memory.guarded_pointer import (
    GuardedPointer,
    PointerPermission,
    ProtectionError,
    make_pointer,
    pointer_value,
)
from repro.memory.ltlb import Ltlb
from repro.memory.memory_system import LTLB_FLAG_BLOCKS_VALID, LTLB_FLAG_WRITABLE, MemorySystem
from repro.memory.page_table import (
    BLOCK_SIZE_WORDS,
    BLOCKS_PER_PAGE,
    BlockStatus,
    LocalPageTable,
    LptEntry,
    PAGE_SIZE_WORDS,
    block_base,
    block_of,
    page_of,
)
from repro.memory.requests import MemOpKind, MemRequest
from repro.memory.sdram import Sdram, SdramTiming
from repro.memory.secded import (
    CODEWORD_BITS,
    SecdedError,
    inject_error,
    secded_decode,
    secded_encode,
)


class TestSecded:
    def test_roundtrip(self):
        for value in [0, 1, 0xDEADBEEF, (1 << 64) - 1, 0x0123456789ABCDEF]:
            data, corrected = secded_decode(secded_encode(value))
            assert data == value
            assert not corrected

    def test_single_bit_errors_corrected_everywhere(self):
        word = 0xA5A5_5A5A_0F0F_F0F0
        codeword = secded_encode(word)
        for position in range(CODEWORD_BITS):
            data, corrected = secded_decode(codeword ^ (1 << position))
            assert data == word
            assert corrected

    def test_double_bit_error_detected(self):
        codeword = secded_encode(12345)
        with pytest.raises(SecdedError):
            secded_decode(inject_error(codeword, [3, 40]))

    def test_inject_error_validates_positions(self):
        with pytest.raises(ValueError):
            inject_error(secded_encode(1), [CODEWORD_BITS])


class TestSdram:
    def test_read_write(self):
        sdram = Sdram(size_words=1024)
        sdram.write_word(10, 999)
        assert sdram.read_word(10) == 999
        assert sdram.read_word(11) == 0

    def test_address_bounds(self):
        sdram = Sdram(size_words=16)
        with pytest.raises(IndexError):
            sdram.read_word(16)
        with pytest.raises(IndexError):
            sdram.write_word(-1, 0)

    def test_sync_bits(self):
        sdram = Sdram(size_words=64)
        assert sdram.sync_bit(5) == 0
        sdram.set_sync_bit(5, 1)
        assert sdram.sync_bit(5) == 1

    def test_page_mode_timing(self):
        sdram = Sdram(size_words=4096, timing=SdramTiming(row_activate=5, cas=2,
                                                          cycles_per_word=1,
                                                          row_size_words=512))
        first = sdram.access_latency(0, 1)
        second = sdram.access_latency(8, 1)           # same row: page-mode hit
        far = sdram.access_latency(1024, 1)           # different row
        assert first == 5 + 2
        assert second == 2
        assert far == 5 + 2

    def test_burst_latency_scales_with_words(self):
        single = Sdram(size_words=4096).access_latency(0, 1)
        burst = Sdram(size_words=4096).access_latency(0, 8)
        assert burst == single + 7 * SdramTiming().cycles_per_word

    def test_block_read_write(self):
        sdram = Sdram(size_words=64)
        sdram.write_block(8, [1, 2, 3, 4])
        assert sdram.read_block(8, 4) == [1, 2, 3, 4]

    def test_secded_correction_and_scrub(self):
        sdram = Sdram(size_words=64, secded_enabled=True)
        sdram.write_word(3, 777)
        sdram.inject_bit_error(3, [5])
        assert sdram.read_word(3) == 777
        assert sdram.corrected_errors == 1
        # Scrubbed: reading again needs no correction.
        assert sdram.read_word(3) == 777
        assert sdram.corrected_errors == 1

    def test_secded_double_error_raises(self):
        sdram = Sdram(size_words=64, secded_enabled=True)
        sdram.write_word(3, 777)
        sdram.inject_bit_error(3, [5, 9])
        with pytest.raises(SecdedError):
            sdram.read_word(3)

    def test_float_and_pointer_words_stored_tagged(self):
        sdram = Sdram(size_words=64)
        sdram.write_word(1, 2.5)
        pointer = GuardedPointer(4, 3, PointerPermission.READ)
        sdram.write_word(2, pointer)
        assert sdram.read_word(1) == 2.5
        assert sdram.read_word(2) == pointer
        assert sdram.pointer_tag(2)
        assert not sdram.pointer_tag(1)


class TestGuardedPointer:
    def test_segment_geometry(self):
        pointer = GuardedPointer(address=0x1005, length_exp=4, permission=PointerPermission.rw())
        assert pointer.segment_size == 16
        assert pointer.segment_base == 0x1000
        assert pointer.segment_limit == 0x1010

    def test_add_within_segment(self):
        pointer = GuardedPointer(0x1000, 4, PointerPermission.rw())
        assert pointer.add(15).address == 0x100F

    def test_add_outside_segment_faults(self):
        pointer = GuardedPointer(0x1000, 4, PointerPermission.rw())
        with pytest.raises(ProtectionError):
            pointer.add(16)
        with pytest.raises(ProtectionError):
            pointer.add(-1)

    def test_permission_check(self):
        read_only = GuardedPointer(0x100, 3, PointerPermission.READ)
        read_only.check(PointerPermission.READ)
        with pytest.raises(ProtectionError):
            read_only.check(PointerPermission.WRITE)

    def test_check_address_out_of_segment(self):
        pointer = GuardedPointer(0x100, 3, PointerPermission.rw())
        with pytest.raises(ProtectionError):
            pointer.check(PointerPermission.READ, address=0x200)

    def test_encode_decode_roundtrip(self):
        pointer = GuardedPointer(0x3F_0000_1234, 17, PointerPermission.rwx())
        assert GuardedPointer.decode(pointer.encode()) == pointer

    def test_make_pointer_covers_requested_range(self):
        pointer = make_pointer(base=100, size_words=50, permission=PointerPermission.rw())
        assert pointer.contains(100)
        assert pointer.contains(149)

    def test_pointer_value_helper(self):
        assert pointer_value(42) == 42
        assert pointer_value(GuardedPointer(7, 2, PointerPermission.READ)) == 7

    def test_int_conversion(self):
        pointer = GuardedPointer(0x55, 2, PointerPermission.READ)
        assert int(pointer) == 0x55

    def test_invalid_fields_rejected(self):
        with pytest.raises(ValueError):
            GuardedPointer(-1, 0, PointerPermission.READ)
        with pytest.raises(ValueError):
            GuardedPointer(0, 64, PointerPermission.READ)


class TestPageTable:
    def test_page_and_block_arithmetic(self):
        assert page_of(PAGE_SIZE_WORDS + 5) == 1
        assert block_of(17) == 2
        assert block_base(17) == 16
        assert BLOCKS_PER_PAGE == PAGE_SIZE_WORDS // BLOCK_SIZE_WORDS

    def test_entry_translate(self):
        entry = LptEntry(virtual_page=4, physical_frame=9)
        assert entry.translate(4 * PAGE_SIZE_WORDS + 3) == 9 * PAGE_SIZE_WORDS + 3

    def test_entry_pack_unpack_roundtrip(self):
        entry = LptEntry(virtual_page=123, physical_frame=45, writable=False)
        entry.set_status(123 * PAGE_SIZE_WORDS + 8, BlockStatus.DIRTY)
        entry.set_status(123 * PAGE_SIZE_WORDS + 300, BlockStatus.INVALID)
        unpacked = LptEntry.unpack(entry.pack())
        assert unpacked.virtual_page == 123
        assert unpacked.physical_frame == 45
        assert unpacked.writable is False
        assert unpacked.block_status == entry.block_status

    def test_unpack_invalid_entry_returns_none(self):
        assert LptEntry.unpack([0, 0, 0, 0]) is None

    def test_table_insert_lookup(self):
        table = LocalPageTable(num_entries=64)
        entry = LptEntry(virtual_page=7, physical_frame=2)
        table.insert(entry)
        assert table.lookup(7 * PAGE_SIZE_WORDS + 1) is entry
        assert table.lookup(8 * PAGE_SIZE_WORDS) is None
        assert 7 in table

    def test_collision_detected(self):
        table = LocalPageTable(num_entries=4)
        table.insert(LptEntry(virtual_page=1, physical_frame=0))
        with pytest.raises(ValueError):
            table.insert(LptEntry(virtual_page=5, physical_frame=1))  # 5 % 4 == 1

    def test_block_status_helpers(self):
        table = LocalPageTable(num_entries=16)
        table.insert(LptEntry(virtual_page=0, physical_frame=0))
        table.set_block_status(24, BlockStatus.READ_ONLY)
        assert table.block_status(24) is BlockStatus.READ_ONLY
        assert table.block_status(32) is BlockStatus.READ_WRITE

    def test_writeback_mirror(self):
        written = {}
        table = LocalPageTable(num_entries=16)
        table.attach_writeback(lambda slot, words: written.__setitem__(slot, list(words)))
        entry = LptEntry(virtual_page=3, physical_frame=5)
        table.insert(entry)
        assert 3 in written
        assert written[3][0] == (3 << 1) | 1
        table.remove(3)
        assert written[3] == [0, 0, 0, 0]

    def test_non_power_of_two_size_rejected(self):
        with pytest.raises(ValueError):
            LocalPageTable(num_entries=100)

    def test_block_status_predicates(self):
        assert BlockStatus.INVALID.allows_read() is False
        assert BlockStatus.READ_ONLY.allows_read() is True
        assert BlockStatus.READ_ONLY.allows_write() is False
        assert BlockStatus.DIRTY.allows_write() is True


class TestLtlb:
    def _entry(self, page):
        return LptEntry(virtual_page=page, physical_frame=page + 100)

    def test_hit_and_miss(self):
        ltlb = Ltlb(num_entries=4)
        ltlb.insert(self._entry(1))
        assert ltlb.lookup(1 * PAGE_SIZE_WORDS + 7) is not None
        assert ltlb.lookup(2 * PAGE_SIZE_WORDS) is None
        assert ltlb.hits == 1
        assert ltlb.misses == 1

    def test_lru_eviction(self):
        ltlb = Ltlb(num_entries=2)
        ltlb.insert(self._entry(1))
        ltlb.insert(self._entry(2))
        ltlb.lookup(1 * PAGE_SIZE_WORDS)          # touch page 1
        ltlb.insert(self._entry(3))               # evicts page 2
        assert 1 in ltlb
        assert 2 not in ltlb
        assert 3 in ltlb
        assert ltlb.evictions == 1

    def test_invalidate(self):
        ltlb = Ltlb(num_entries=4)
        ltlb.insert(self._entry(5))
        assert ltlb.invalidate(5)
        assert not ltlb.invalidate(5)
        assert ltlb.lookup(5 * PAGE_SIZE_WORDS) is None

    def test_probe_does_not_count(self):
        ltlb = Ltlb(num_entries=4)
        ltlb.insert(self._entry(1))
        ltlb.probe(1 * PAGE_SIZE_WORDS)
        assert ltlb.hits == 0 and ltlb.misses == 0

    def test_hit_rate(self):
        ltlb = Ltlb(num_entries=4)
        ltlb.insert(self._entry(0))
        ltlb.lookup(0)
        ltlb.lookup(PAGE_SIZE_WORDS)
        assert ltlb.hit_rate == pytest.approx(0.5)


class TestCache:
    def _filled(self, cache, base=0, physical=1000, values=None, writable=True):
        data = values or list(range(8))
        cache.fill(base, physical, data, [0] * 8, writable=writable)
        return cache.probe(base)

    def test_fill_then_hit(self):
        cache = InterleavedCache()
        self._filled(cache, base=16)
        line = cache.lookup(19, is_store=False)
        assert line is not None
        assert cache.read_word(line, 19) == 3
        assert cache.hits == 1

    def test_miss_statistics(self):
        cache = InterleavedCache()
        assert cache.lookup(8, is_store=True) is None
        assert cache.write_misses == 1

    def test_write_marks_dirty(self):
        cache = InterleavedCache()
        line = self._filled(cache, base=0)
        cache.write_word(line, 3, 99)
        assert line.dirty
        assert cache.read_word(line, 3) == 99

    def test_bank_mapping_is_word_interleaved(self):
        cache = InterleavedCache(num_banks=4)
        assert [cache.bank_of(a) for a in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_eviction_returns_dirty_victim(self):
        cache = InterleavedCache(num_banks=1, bank_size_words=32, line_size_words=8,
                                 associativity=1)
        line = self._filled(cache, base=0, physical=0)
        cache.write_word(line, 0, 42)
        # A line mapping to the same (single) set with a different tag.
        conflicting_base = cache.num_sets * 8
        evicted = cache.fill(conflicting_base, 512, [0] * 8, [0] * 8)
        assert evicted is not None
        assert evicted.dirty
        assert evicted.data[0] == 42

    def test_invalidate_returns_dirty_data(self):
        cache = InterleavedCache()
        line = self._filled(cache, base=8)
        cache.write_word(line, 9, 7)
        evicted = cache.invalidate(9)
        assert evicted is not None and evicted.data[1] == 7
        assert cache.probe(8) is None

    def test_invalidate_clean_returns_none(self):
        cache = InterleavedCache()
        self._filled(cache, base=8)
        assert cache.invalidate(8) is None

    def test_flush(self):
        cache = InterleavedCache()
        line = self._filled(cache, base=0)
        cache.write_word(line, 1, 5)
        self._filled(cache, base=64)
        dirty = cache.flush()
        assert len(dirty) == 1
        assert cache.resident_lines == 0

    def test_sync_bits_in_lines(self):
        cache = InterleavedCache()
        line = self._filled(cache, base=0)
        assert cache.sync_bit(line, 2) == 0
        cache.set_sync_bit(line, 2, 1)
        assert cache.sync_bit(line, 2) == 1

    def test_unaligned_fill_rejected(self):
        cache = InterleavedCache()
        with pytest.raises(ValueError):
            cache.fill(3, 0, [0] * 8, [0] * 8)

    def test_wrong_fill_size_rejected(self):
        cache = InterleavedCache()
        with pytest.raises(ValueError):
            cache.fill(0, 0, [0] * 4, [0] * 4)

    def test_writable_flag(self):
        cache = InterleavedCache()
        line = self._filled(cache, base=0, writable=False)
        assert not line.writable


def _build_memory_system(tracer=None):
    sdram = Sdram(size_words=1 << 16, secded_enabled=False)
    cache = InterleavedCache()
    ltlb = Ltlb()
    table = LocalPageTable(num_entries=64)
    events = []
    system = MemorySystem(0, cache, ltlb, table, sdram,
                          event_sink=lambda record, cycle: events.append((cycle, record)))
    return system, table, events


class TestMemorySystem:
    def _map(self, system, table, page=0, status=BlockStatus.READ_WRITE, preload=True):
        entry = LptEntry(virtual_page=page, physical_frame=page,
                         block_status=[status] * BLOCKS_PER_PAGE)
        table.insert(entry)
        if preload:
            system.ltlb.insert(entry)
        return entry

    def _run(self, system, cycles=200):
        responses = []
        for cycle in range(cycles):
            responses.extend(system.tick(cycle))
        return responses

    def test_load_miss_then_hit(self):
        system, table, events = _build_memory_system()
        self._map(system, table)
        system.debug_write(8, 123)
        from repro.isa.registers import RegisterRef, RegFile

        dest = RegisterRef(RegFile.INT, 5)
        system.submit(MemRequest(kind=MemOpKind.LOAD, address=8, dest=dest), 1)
        responses = self._run(system)
        assert len(responses) == 1
        assert responses[0].value == 123
        assert system.cache.misses == 1
        # A second load hits in the cache.
        system.submit(MemRequest(kind=MemOpKind.LOAD, address=8, dest=dest), 1)
        responses = self._run(system)
        assert responses[0].value == 123
        assert system.cache.hits >= 1

    def test_store_then_load(self):
        system, table, events = _build_memory_system()
        self._map(system, table)
        from repro.isa.registers import RegisterRef, RegFile

        system.submit(MemRequest(kind=MemOpKind.STORE, address=16, data=55), 1)
        self._run(system)
        system.submit(MemRequest(kind=MemOpKind.LOAD, address=16,
                                 dest=RegisterRef(RegFile.INT, 1)), 1)
        responses = self._run(system)
        assert responses[0].value == 55
        assert system.debug_read(16) == 55

    def test_ltlb_miss_raises_event(self):
        system, table, events = _build_memory_system()
        # No mapping at all.
        system.submit(MemRequest(kind=MemOpKind.LOAD, address=8,
                                 dest=None), 1)
        self._run(system)
        assert len(events) == 1
        assert events[0][1].event_type is EventType.LTLB_MISS

    def test_block_status_fault(self):
        system, table, events = _build_memory_system()
        self._map(system, table, status=BlockStatus.INVALID)
        system.submit(MemRequest(kind=MemOpKind.LOAD, address=8, dest=None), 1)
        self._run(system)
        assert events and events[0][1].event_type is EventType.BLOCK_STATUS

    def test_read_only_block_store_faults_on_hit(self):
        system, table, events = _build_memory_system()
        self._map(system, table, status=BlockStatus.READ_ONLY)
        from repro.isa.registers import RegisterRef, RegFile

        # Read fills the cache with a non-writable line.
        system.submit(MemRequest(kind=MemOpKind.LOAD, address=8,
                                 dest=RegisterRef(RegFile.INT, 1)), 1)
        self._run(system)
        # Store hits that line and must fault.
        system.submit(MemRequest(kind=MemOpKind.STORE, address=8, data=1), 1)
        self._run(system)
        assert any(record.event_type is EventType.BLOCK_STATUS for _, record in events)

    def test_sync_fault(self):
        system, table, events = _build_memory_system()
        self._map(system, table)
        system.debug_write(8, 1, sync_bit=0)
        system.submit(MemRequest(kind=MemOpKind.LOAD, address=8, dest=None,
                                 sync_pre="f"), 1)
        self._run(system)
        assert events and events[0][1].event_type is EventType.SYNC_FAULT

    def test_sync_postcondition_applied(self):
        system, table, events = _build_memory_system()
        self._map(system, table)
        system.debug_write(8, 1, sync_bit=0)
        system.submit(MemRequest(kind=MemOpKind.STORE, address=8, data=9,
                                 sync_pre="e", sync_post="f"), 1)
        self._run(system)
        assert system.debug_sync_bit(8) == 1

    def test_install_translation_and_probe(self):
        system, table, events = _build_memory_system()
        entry = system.install_translation(3 * PAGE_SIZE_WORDS, 7,
                                           LTLB_FLAG_WRITABLE | LTLB_FLAG_BLOCKS_VALID)
        assert entry.writable
        assert system.probe_translation(3 * PAGE_SIZE_WORDS + 4) == 7
        assert system.probe_translation(9 * PAGE_SIZE_WORDS) == -1

    def test_install_translation_invalid_blocks(self):
        system, table, events = _build_memory_system()
        entry = system.install_translation(2 * PAGE_SIZE_WORDS, 5, LTLB_FLAG_WRITABLE)
        assert all(status is BlockStatus.INVALID for status in entry.block_status)

    def test_store_auto_dirties_block(self):
        system, table, events = _build_memory_system()
        self._map(system, table)
        system.submit(MemRequest(kind=MemOpKind.STORE, address=8, data=1), 1)
        self._run(system)
        assert system.get_block_status(8) == int(BlockStatus.DIRTY)

    def test_physical_access_bypasses_translation(self):
        system, table, events = _build_memory_system()
        from repro.isa.registers import RegisterRef, RegFile

        system.sdram.write_word(100, 31337)
        system.submit(MemRequest(kind=MemOpKind.LOAD, address=100,
                                 dest=RegisterRef(RegFile.INT, 2), physical=True), 1)
        responses = self._run(system)
        assert responses[0].value == 31337

    def test_secondary_miss_merge_preserves_stores(self):
        system, table, events = _build_memory_system()
        self._map(system, table)
        # Two stores to the same (cold) block submitted back to back: the
        # second must not clobber the first when the block is filled.
        system.submit(MemRequest(kind=MemOpKind.STORE, address=8, data=11), 1)
        system.submit(MemRequest(kind=MemOpKind.STORE, address=9, data=22), 2)
        self._run(system)
        assert system.debug_read(8) == 11
        assert system.debug_read(9) == 22

    def test_read_block_and_write_block_virtual(self):
        system, table, events = _build_memory_system()
        self._map(system, table)
        system.write_block_virtual(16, list(range(8)))
        assert system.read_block_virtual(19) == list(range(8))

    def test_invalidate_block_writes_back(self):
        system, table, events = _build_memory_system()
        self._map(system, table)
        system.submit(MemRequest(kind=MemOpKind.STORE, address=8, data=77), 1)
        self._run(system)
        system.invalidate_block(8)
        assert system.sdram.read_word(8) == 77
