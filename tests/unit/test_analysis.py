"""Unit tests for repro.analysis (Figure 9 timelines, Table 1 latency)."""

import pytest

from repro.analysis.latency import (
    AccessLatencyHarness,
    measure_load_latency,
    measure_store_latency,
)
from repro.analysis.timeline import (
    Timeline,
    TimelineEvent,
    extract_remote_access_timeline,
    timeline_from_records,
)
from repro.core.trace import Tracer


class TestTimeline:
    def _timeline(self):
        timeline = Timeline(kind="remote read")
        timeline.add(110, 1, "execute load")
        timeline.add(100, 0, "LOAD issues")
        timeline.add(None, 0, "never happened")
        timeline.add(140, 0, "return data to destination register")
        return timeline

    def test_add_ignores_none_cycles(self):
        assert len(self._timeline().events) == 3

    def test_normalised_shifts_and_sorts(self):
        normalised = self._timeline().normalised()
        assert [event.cycle for event in normalised.events] == [0, 10, 40]
        assert normalised.events[0].label == "LOAD issues"
        # The original is untouched.
        assert self._timeline().events[0].cycle == 110

    def test_normalised_empty_is_identity(self):
        timeline = Timeline(kind="x")
        assert timeline.normalised() is timeline
        assert timeline.total_cycles == 0

    def test_total_cycles_and_labels(self):
        timeline = self._timeline()
        assert timeline.total_cycles == 40
        assert "execute load" in timeline.labels()

    def test_str_renders_normalised_rows(self):
        text = str(self._timeline())
        assert text.startswith("timeline: remote read (40 cycles)")
        assert "node 0  LOAD issues" in text

    def test_records_round_trip(self):
        timeline = self._timeline()
        records = timeline.to_records()
        assert records == [[0, 0, "LOAD issues"], [10, 1, "execute load"],
                           [40, 0, "return data to destination register"]]
        rebuilt = timeline_from_records("remote read", records)
        assert rebuilt.to_records() == records
        assert rebuilt.total_cycles == timeline.total_cycles

    def test_event_str(self):
        event = TimelineEvent(cycle=5, node=1, label="x")
        assert "node 1" in str(event)


def _synthetic_remote_read_trace():
    tracer = Tracer()
    tracer.record(100, 0, "mem_issue", store=False, slot=0, cluster=0)
    tracer.record(102, 0, "cache_miss")
    tracer.record(103, 0, "ltlb_miss")
    tracer.record(105, 0, "event_enqueue", type="LTLB_MISS")
    tracer.record(130, 0, "msg_inject", priority=0)
    tracer.record(135, 1, "msg_deliver", priority=0)
    tracer.record(138, 1, "mem_issue", store=False, slot=1, cluster=0)
    tracer.record(150, 1, "msg_inject", priority=1)
    tracer.record(155, 0, "msg_deliver", priority=1)
    tracer.record(160, 0, "reg_write", reg="i5", origin="xregwr", slot=0, cluster=0)
    return tracer


class TestExtractTimeline:
    def test_read_timeline_from_synthetic_trace(self):
        timeline = extract_remote_access_timeline(
            _synthetic_remote_read_trace(), "read"
        )
        assert timeline.total_cycles == 60
        labels = " | ".join(timeline.labels())
        for fragment in ("LOAD issues", "LTLB miss", "message received",
                         "reply message received", "destination register"):
            assert fragment in labels

    def test_write_timeline_matches_store_milestones(self):
        tracer = Tracer()
        tracer.record(10, 0, "mem_issue", store=True, slot=0, cluster=0)
        tracer.record(12, 0, "cache_miss")
        tracer.record(13, 0, "ltlb_miss")
        tracer.record(15, 0, "event_enqueue", type="LTLB_MISS")
        tracer.record(30, 0, "msg_inject", priority=0)
        tracer.record(35, 1, "msg_deliver", priority=0)
        tracer.record(38, 1, "mem_issue", store=True, slot=1, cluster=0)
        tracer.record(50, 1, "store_complete", address=0x4000)
        timeline = extract_remote_access_timeline(tracer, "write", address=0x4000)
        assert timeline.total_cycles == 40
        assert "store complete (message handler completes)" in timeline.labels()

    def test_address_filter_excludes_other_stores(self):
        tracer = Tracer()
        tracer.record(10, 0, "mem_issue", store=True, slot=0, cluster=0)
        tracer.record(50, 1, "store_complete", address=0x9999)
        timeline = extract_remote_access_timeline(tracer, "write", address=0x4000)
        assert "store complete (message handler completes)" not in timeline.labels()

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            extract_remote_access_timeline(Tracer(), "swap")


class TestMeasureLatency:
    def test_load_latency_from_synthetic_trace(self):
        tracer = _synthetic_remote_read_trace()
        assert measure_load_latency(tracer, node=0, slot=0, cluster=0) == 60

    def test_load_latency_requires_issue_and_completion(self):
        with pytest.raises(LookupError):
            measure_load_latency(Tracer(), node=0, slot=0, cluster=0)
        tracer = Tracer()
        tracer.record(10, 0, "mem_issue", store=False, slot=0, cluster=0)
        with pytest.raises(LookupError):
            measure_load_latency(tracer, node=0, slot=0, cluster=0)

    def test_store_latency_from_synthetic_trace(self):
        tracer = Tracer()
        tracer.record(10, 0, "mem_issue", store=True, slot=0, cluster=0)
        tracer.record(52, 1, "store_complete", address=0x4000)
        latency = measure_store_latency(tracer, issue_node=0, home_node=1,
                                        address=0x4000, slot=0, cluster=0)
        assert latency == 42

    def test_store_latency_requires_matching_address(self):
        tracer = Tracer()
        tracer.record(10, 0, "mem_issue", store=True, slot=0, cluster=0)
        tracer.record(52, 1, "store_complete", address=0x9999)
        with pytest.raises(LookupError):
            measure_store_latency(tracer, issue_node=0, home_node=1,
                                  address=0x4000, slot=0, cluster=0)


class TestHarness:
    def test_local_cache_hit_measurement_on_a_real_machine(self):
        harness = AccessLatencyHarness()
        read = harness.measure("local_cache_hit", "read")
        write = harness.measure("local_cache_hit", "write")
        assert read > 0 and write > 0
        assert write <= read

    def test_rejects_unknown_scenario_and_kind(self):
        harness = AccessLatencyHarness()
        with pytest.raises(ValueError):
            harness.measure("nonexistent", "read")
        with pytest.raises(ValueError):
            harness.measure("local_cache_hit", "swap")
