"""Back-compat coverage for the deprecated pre-``repro.api`` dialects.

Two guarantees, both asserted here:

* **bit-exact**: the old ``run_workload(name, dict)`` path and a new-style
  ``Experiment`` run serialise to byte-identical ``RunResult`` records for
  every scenario-matrix workload (wall time zeroed — it is the one
  legitimately nondeterministic field);
* **warn once**: each shim emits exactly one ``ReproDeprecationWarning``
  per process, the first time it is used.

The suite-wide filter in ``setup.cfg`` turns ``ReproDeprecationWarning``
into an error, so the deliberate old-path calls here always go through
``pytest.warns`` (which overrides the filter).
"""

import json
import warnings

import pytest

from repro.api import Experiment, ReproDeprecationWarning, RunResult, unregister
from repro.api.deprecation import reset_warnings
from repro.workloads import factories

#: The five scenario-matrix workloads (smoke-sized parameters).
SCENARIOS = [
    ("stencil", {"kind": "7pt", "n_hthreads": 1}),
    ("ping-pong", {"rounds": 4}),
    ("flood", {"messages": 8}),
    ("remote-memory", {"repeats": 6}),
    ("coherence", {"repeats": 6}),
]


def _old_style_record(workload, params):
    """Serialise an old-dialect run the way the sweep runner would."""
    reset_warnings()
    with pytest.warns(ReproDeprecationWarning):
        metrics = factories.run_workload(workload, dict(params))
    return RunResult.from_metrics(
        workload=workload, params=params, metrics=metrics, wall_seconds=0.0
    ).to_json()


def _new_style_record(workload, params):
    with Experiment.builder().workload(workload, **params).build() as experiment:
        result = experiment.run()
    return result.replace(wall_seconds=0.0).to_json()


class TestBitExactEquivalence:
    @pytest.mark.parametrize("workload,params", SCENARIOS,
                             ids=[name for name, _ in SCENARIOS])
    def test_old_and_new_dialects_serialise_identically(self, workload, params):
        assert _old_style_record(workload, params) == _new_style_record(
            workload, params
        )

    def test_shimmed_workload_params_match_typed_defaults(self):
        from repro.api import workload_defaults

        reset_warnings()
        with pytest.warns(ReproDeprecationWarning):
            via_shim = factories.workload_params("stencil")
        assert via_shim == workload_defaults("stencil")

    def test_shimmed_workload_names_match_typed_names(self):
        from repro.api import workload_names

        reset_warnings()
        with pytest.warns(ReproDeprecationWarning):
            via_shim = factories.workload_names()
        assert via_shim == workload_names()

    def test_shimmed_register_still_registers(self):
        reset_warnings()
        with pytest.warns(ReproDeprecationWarning):
            decorator = factories.register("tmp-shim-registered")

        def fake(n: int = 1):
            return {"verified": True, "n": n}

        try:
            decorator(fake)
            with pytest.warns(ReproDeprecationWarning):
                assert factories.run_workload("tmp-shim-registered") == {
                    "verified": True,
                    "n": 1,
                }
        finally:
            unregister("tmp-shim-registered")

    def test_unknown_workload_error_is_unchanged(self):
        reset_warnings()
        with pytest.warns(ReproDeprecationWarning):
            with pytest.raises(KeyError, match="unknown workload 'nope'; known:"):
                factories.run_workload("nope")


class TestWarnOnce:
    def _collect(self, call):
        """Warnings emitted by *call* with every filter disabled."""
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            call()
        return [w for w in caught if issubclass(w.category, ReproDeprecationWarning)]

    @pytest.mark.parametrize(
        "shim",
        [
            lambda: factories.run_workload("area-model"),
            lambda: factories.workload_params("stencil"),
            lambda: factories.workload_names(),
            lambda: factories.register("tmp-warn-once"),
        ],
        ids=["run_workload", "workload_params", "workload_names", "register"],
    )
    def test_each_shim_warns_exactly_once(self, shim):
        reset_warnings()
        assert len(self._collect(shim)) == 1, "first call must warn"
        assert self._collect(shim) == [], "second call must stay silent"

    def test_warning_message_names_the_replacement(self):
        reset_warnings()
        with pytest.warns(ReproDeprecationWarning, match="repro.api.run_workload"):
            factories.run_workload("area-model")

    def test_reset_rearms_the_warning(self):
        reset_warnings()
        assert len(self._collect(lambda: factories.workload_names())) == 1
        reset_warnings()
        assert len(self._collect(lambda: factories.workload_names())) == 1

    def test_category_is_a_deprecation_warning(self):
        assert issubclass(ReproDeprecationWarning, DeprecationWarning)

    def test_error_filter_does_not_consume_the_warn_once_key(self):
        """Under an ``error::`` filter the raise must leave the key armed:
        every deprecated call keeps failing loudly, not just the first
        (otherwise CI's gate would only catch one internal misuse per
        process)."""
        reset_warnings()
        with warnings.catch_warnings():
            warnings.simplefilter("error", ReproDeprecationWarning)
            with pytest.raises(ReproDeprecationWarning):
                factories.workload_names()
            with pytest.raises(ReproDeprecationWarning):
                factories.workload_names()


class TestInternalCodeIsShimFree:
    """The suite-wide error filter proves this globally; these spot-check
    the hottest internal paths explicitly so a regression fails close to
    its cause rather than in an unrelated test."""

    def test_sweep_execute_run_does_not_warn(self):
        from repro.sweep.runner import execute_run
        from repro.sweep.spec import RunSpec

        reset_warnings()
        with warnings.catch_warnings():
            warnings.simplefilter("error", ReproDeprecationWarning)
            record = execute_run(RunSpec("area-model", {}))
        assert record["status"] == "ok"

    def test_cli_run_does_not_warn(self, capsys):
        from repro.cli import main

        reset_warnings()
        with warnings.catch_warnings():
            warnings.simplefilter("error", ReproDeprecationWarning)
            assert main(["run", "gtlb-mapping", "--param", "lookups=50"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["verified"] is True
