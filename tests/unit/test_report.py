"""Unit tests for the paper-figure report subsystem (repro.report)."""

import json
import os

import pytest

from repro import cli
from repro.report.compare import FAIL, OK, SKIPPED, delta_table, evaluate, failures
from repro.report.manifest import Manifest, ManifestError
from repro.report.render import build_markdown, render_report
from repro.report.svg import (
    escape,
    format_value,
    gantt_chart,
    grouped_bar_chart,
    nice_ceiling,
)
from repro.sweep.schema import SCHEMA_VERSION, make_record


def _record(workload, params, metrics, run_id=None, status="ok", tags=None):
    return make_record(
        run_id=run_id or f"{workload}-" + "-".join(f"{k}{v}" for k, v in params.items()),
        workload=workload,
        params=params,
        status=status,
        metrics=metrics,
        error="boom" if status == "failed" else None,
        tags=tags,
    )


def _document(records):
    return {
        "schema_version": SCHEMA_VERSION,
        "spec": {"name": "test-spec"},
        "runs": records,
    }


@pytest.fixture
def sample_records():
    timeline = [[0, 0, "LOAD issues"], [5, 0, "LTLB miss"], [20, 1, "execute load"],
                [40, 0, "return data to destination register"]]
    return [
        _record("area-model", {"num_nodes": 32}, {
            "verified": True, "peak_ratio": 128.0, "area_ratio": 1.5189,
            "peak_per_area_improvement": 84.27,
            "processor_fraction_1993": 0.1111, "processor_fraction_1996": 0.04,
        }),
        _record("stencil", {"kind": "7pt", "n_hthreads": 1},
                {"verified": True, "cycles": 72, "static_depth": 12,
                 "workload_operations": 19}),
        _record("stencil", {"kind": "7pt", "n_hthreads": 2},
                {"verified": True, "cycles": 61, "static_depth": 8,
                 "workload_operations": 22}),
        _record("many-to-one-flood", {"queue_words": 6},
                {"verified": True, "cycles": 115, "nacks": 14,
                 "retransmissions": 14, "max_queue_words": 6}),
        _record("many-to-one-flood", {"queue_words": 128},
                {"verified": True, "cycles": 109, "nacks": 0,
                 "retransmissions": 0, "max_queue_words": 33}),
        _record("remote-access-timeline", {"kind": "read"},
                {"verified": True, "cycles": 41, "total_cycles": 40,
                 "milestones": 4,
                 "timeline": json.dumps(timeline, separators=(",", ":"))}),
    ]


@pytest.fixture
def manifest(sample_records):
    return Manifest.from_document(_document(sample_records), source="test")


@pytest.fixture
def full_manifest(sample_records):
    """Synthetic records for every section the paper-figures sweep covers."""
    table1 = {"verified": True}
    for scenario, (read, write) in {
        "local_cache_hit": (3, 2), "local_cache_miss": (13, 19),
        "local_ltlb_miss": (50, 55), "remote_cache_hit": (59, 42),
        "remote_cache_miss": (68, 59), "remote_ltlb_miss": (105, 95),
    }.items():
        table1[f"{scenario}_read"] = read
        table1[f"{scenario}_write"] = write
    records = sample_records + [
        _record("table1-access-times", {}, table1),
        _record("cc-sync", {"iterations": 50},
                {"verified": True, "cycles": 408, "cycles_per_iteration": 8.16}),
        _record("cc-barrier", {"iterations": 50, "clusters": 4},
                {"verified": True, "cycles": 759, "cycles_per_iteration": 15.18}),
        _record("remote-store-latency", {}, {"verified": True, "latency": 25}),
        _record("message-stream", {"count": 64},
                {"verified": True, "cycles": 458, "cycles_per_message": 7.16}),
        _record("ping-pong", {"rounds": 16},
                {"verified": True, "cycles": 571, "cycles_per_round_trip": 35.7}),
        _record("gtlb-mapping", {"pages_per_node": 2},
                {"verified": True, "nodes_used": 8, "min_pages_per_node": 8,
                 "max_pages_per_node": 8, "gtlb_hit_rate": 0.9998}),
        _record("stencil", {"kind": "27pt", "n_hthreads": 1},
                {"verified": True, "cycles": 139, "static_depth": 32,
                 "workload_operations": 59}),
        _record("stencil", {"kind": "27pt", "n_hthreads": 4},
                {"verified": True, "cycles": 98, "static_depth": 13,
                 "workload_operations": 66}),
        _record("vthread-interleave", {"num_threads": 1},
                {"verified": True, "cycles": 204, "num_threads": 1}),
        _record("vthread-interleave", {"num_threads": 4},
                {"verified": True, "cycles": 349, "num_threads": 4}),
        _record("issue-policy", {"policy": "event-priority"},
                {"verified": True, "cycles": 408, "policy": "event-priority"}),
        _record("issue-policy", {"policy": "hep"},
                {"verified": True, "cycles": 2423, "policy": "hep"}),
        _record("remote-memory", {"mode": "remote", "repeats": 16},
                {"verified": True, "cycles": 949, "mode": "remote"}),
        _record("remote-memory", {"mode": "coherent", "repeats": 16},
                {"verified": True, "cycles": 177, "mode": "coherent"}),
        _record("flood", {"send_credits": 16, "messages": 24},
                {"verified": True, "cycles": 178, "nacks": 0,
                 "retransmissions": 0, "max_queue_words": 3}),
    ]
    return Manifest.from_document(_document(records), source="test-full")


class TestSvg:
    def test_format_value(self):
        assert format_value(12) == "12"
        assert format_value(12.0) == "12"
        assert format_value(8.16) == "8.16"
        assert format_value(1 / 3) == "0.3333"
        assert format_value(True) == "true"
        assert format_value("x") == "x"

    def test_escape(self):
        assert escape("a <b> & \"c\"") == "a &lt;b&gt; &amp; &quot;c&quot;"

    def test_nice_ceiling(self):
        assert nice_ceiling(0) == 1.0
        assert nice_ceiling(7) == 10.0
        assert nice_ceiling(101) == 200.0
        assert nice_ceiling(2423) == 2500.0

    def test_grouped_bar_chart_structure(self):
        svg = grouped_bar_chart("T", ["a", "b"], [("s1", [1, 2]), ("s2", [3, None])])
        assert svg.startswith("<svg ") and svg.endswith("</svg>\n")
        assert svg.count("<path ") == 3  # one bar skipped for the None gap
        assert "s1" in svg and "s2" in svg  # legend for >= 2 series

    def test_grouped_bar_chart_single_series_has_no_legend_swatch(self):
        # The only <rect> is the chart surface: one series means no legend.
        svg = grouped_bar_chart("T", ["a"], [("only", [1])])
        assert "<rect x=" not in svg

    def test_grouped_bar_chart_rejects_bad_input(self):
        with pytest.raises(ValueError):
            grouped_bar_chart("T", [], [("s", [])])
        with pytest.raises(ValueError):
            grouped_bar_chart("T", ["a"], [("s", [1, 2])])
        with pytest.raises(ValueError):
            grouped_bar_chart("T", ["a"], [(f"s{i}", [1]) for i in range(5)])

    def test_gantt_chart_structure(self):
        svg = gantt_chart("T", [(0, 0, "start"), (10, 1, "end")])
        assert "start" in svg and "end" in svg
        assert svg.count('rx="2"') >= 2
        with pytest.raises(ValueError):
            gantt_chart("T", [])

    def test_charts_are_deterministic(self):
        args = ("T", ["a", "b"], [("s", [1.5, 2.5])])
        assert grouped_bar_chart(*args) == grouped_bar_chart(*args)


class TestManifest:
    def test_load_results_file(self, tmp_path, sample_records):
        path = tmp_path / "sweep-results.json"
        path.write_text(json.dumps(_document(sample_records)))
        manifest = Manifest.load(str(path))
        assert len(manifest.records) == len(sample_records)
        assert manifest.spec_name == "test-spec"

    def test_load_results_dir_prefers_manifest(self, tmp_path, sample_records):
        (tmp_path / "sweep-results.json").write_text(json.dumps(_document(sample_records)))
        manifest = Manifest.load(str(tmp_path))
        assert len(manifest.records) == len(sample_records)

    def test_load_results_dir_falls_back_to_runs(self, tmp_path, sample_records):
        runs = tmp_path / "runs"
        runs.mkdir()
        for record in sample_records:
            (runs / (record["run_id"] + ".json")).write_text(json.dumps(record))
        manifest = Manifest.load(str(tmp_path))
        assert len(manifest.records) == len(sample_records)

    def test_load_rejects_unusable_paths(self, tmp_path):
        with pytest.raises(ManifestError):
            Manifest.load(str(tmp_path))  # empty dir
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ManifestError):
            Manifest.load(str(bad))

    def test_invalid_records_are_skipped_with_problems(self, sample_records):
        document = _document(sample_records + [{"run_id": "broken"}])
        manifest = Manifest.from_document(document)
        assert len(manifest.records) == len(sample_records)
        assert manifest.problems

    def test_find_matches_effective_defaults(self, manifest):
        # kernel="event" is a factory default the records never spelled out.
        assert manifest.find("stencil", kind="7pt", kernel="event")
        assert not manifest.find("stencil", kind="7pt", kernel="naive")
        # mesh defaults compare list-vs-tuple insensitively.
        assert manifest.find("stencil", mesh=[1, 1, 1])

    def test_find_excludes_failed_records(self, sample_records):
        records = sample_records + [
            _record("cc-sync", {"iterations": 5}, {}, status="failed")
        ]
        manifest = Manifest.from_document(_document(records))
        assert not manifest.find("cc-sync")
        assert manifest.counts() == (len(sample_records), 1)


class TestCompare:
    def test_statuses(self, manifest):
        rows = {row.key: row for row in evaluate(manifest)}
        assert rows["sec1/peak-ratio"].status == OK
        assert rows["fig5/static-depth-7pt-1T"].status == OK
        assert rows["ablation-a4/small-queue-nacks"].status == OK
        # Nothing in the sample manifest covers Table 1.
        assert rows["table1/local_cache_hit/read"].status == SKIPPED
        assert not failures(evaluate(manifest))

    def test_out_of_band_fails(self, sample_records):
        records = [record for record in sample_records
                   if record["workload"] != "many-to-one-flood"]
        records.append(_record("many-to-one-flood", {"queue_words": 128},
                               {"verified": True, "cycles": 109, "nacks": 3,
                                "retransmissions": 3, "max_queue_words": 33}))
        rows = {row.key: row
                for row in evaluate(Manifest.from_document(_document(records)))}
        assert rows["ablation-a4/large-queue-no-nacks"].status == FAIL
        assert failures(list(rows.values()))

    def test_pair_ratio_requires_both_sides(self, sample_records):
        # Only n_hthreads=1 for 27pt: the reduction ratio must be skipped.
        records = sample_records + [
            _record("stencil", {"kind": "27pt", "n_hthreads": 1},
                    {"verified": True, "static_depth": 32}),
        ]
        rows = {row.key: row
                for row in evaluate(Manifest.from_document(_document(records)))}
        assert rows["fig5/27pt-depth-reduction"].status == SKIPPED
        records.append(_record("stencil", {"kind": "27pt", "n_hthreads": 4},
                               {"verified": True, "static_depth": 13}))
        rows = {row.key: row
                for row in evaluate(Manifest.from_document(_document(records)))}
        assert rows["fig5/27pt-depth-reduction"].status == OK
        assert rows["fig5/27pt-depth-reduction"].measured == [round(32 / 13, 4)]

    def test_delta_table_lists_every_expectation(self, manifest):
        rows = evaluate(manifest)
        lines = delta_table(rows)
        assert len(lines) == len(rows) + 2  # header + separator


class TestRender:
    def test_render_both_is_deterministic(self, manifest, tmp_path):
        first = render_report(manifest, str(tmp_path / "a"))
        second = render_report(manifest, str(tmp_path / "b"))
        assert first.markdown_path and second.markdown_path
        names = sorted(os.listdir(tmp_path / "a"))
        assert names == sorted(os.listdir(tmp_path / "b"))
        for name in names:
            assert (tmp_path / "a" / name).read_bytes() == \
                (tmp_path / "b" / name).read_bytes()

    def test_markdown_mentions_sections_and_check(self, manifest):
        lines, charts, check_rows, skipped = build_markdown(manifest)
        text = "\n".join(lines)
        assert "## Figure 5" in text
        assert "## Figure 9" in text
        assert "## Reproduction check vs the paper" in text
        assert "Table 1 access times" in text  # listed as not covered
        assert any(name.startswith("fig9-remote-read") for name, _ in charts)
        assert check_rows and skipped

    def test_format_md_writes_no_charts(self, manifest, tmp_path):
        result = render_report(manifest, str(tmp_path), fmt="md")
        assert result.chart_paths == []
        assert sorted(os.listdir(tmp_path)) == ["report.md"]
        text = (tmp_path / "report.md").read_text()
        assert "![" not in text  # no dangling image links

    def test_format_svg_writes_no_markdown(self, manifest, tmp_path):
        result = render_report(manifest, str(tmp_path), fmt="svg")
        assert result.markdown_path is None
        assert all(name.endswith(".svg") for name in os.listdir(tmp_path))
        with pytest.raises(ValueError):
            render_report(manifest, str(tmp_path), fmt="pdf")

    def test_full_manifest_renders_every_section(self, full_manifest, tmp_path):
        lines, charts, check_rows, skipped = build_markdown(full_manifest)
        assert skipped == []
        text = "\n".join(lines)
        for heading in ("## Sections 1/5", "## Figure 5", "## Figure 6",
                        "## Figure 7", "## Figure 8", "## Figure 9",
                        "## Table 1", "## Ablations A1-A4"):
            assert heading in text, heading
        assert "Not covered" not in text
        # Every evaluated expectation of the synthetic manifest passes.
        statuses = {row.key: row.status for row in check_rows}
        assert statuses["table1/local_cache_hit/read"] == OK
        assert statuses["ablation-a2/hep-vs-event-priority"] == OK
        assert statuses["ablation-a3/coherent-vs-remote"] == OK
        assert FAIL not in statuses.values()
        result = render_report(full_manifest, str(tmp_path))
        chart_names = sorted(os.path.basename(path) for path in result.chart_paths)
        assert "table1-read.svg" in chart_names
        assert "ablation-a1.svg" in chart_names
        assert "fig6-cc-sync.svg" in chart_names

    def test_timeline_detail_missing_is_noted(self, sample_records, tmp_path):
        records = [dict(record) for record in sample_records]
        for record in records:
            if record["workload"] == "remote-access-timeline":
                record["metrics"] = {k: v for k, v in record["metrics"].items()
                                     if k != "timeline"}
        manifest = Manifest.from_document(_document(records))
        lines, charts, _, _ = build_markdown(manifest)
        assert any("not recorded in this manifest" in line for line in lines)
        assert not any(name.startswith("fig9") for name, _ in charts)


class TestReportCli:
    def _write_manifest(self, tmp_path, records):
        path = tmp_path / "sweep-results.json"
        path.write_text(json.dumps(_document(records)))
        return str(path)

    def test_report_renders_and_checks_ok(self, tmp_path, sample_records, capsys):
        path = self._write_manifest(tmp_path, sample_records)
        out_dir = str(tmp_path / "out")
        assert cli.main(["report", path, "-o", out_dir, "--check"]) == 0
        assert os.path.isfile(os.path.join(out_dir, "report.md"))
        captured = capsys.readouterr()
        assert "reproduction check:" in captured.err

    def test_report_default_output_dir(self, tmp_path, sample_records):
        path = self._write_manifest(tmp_path, sample_records)
        assert cli.main(["report", path]) == 0
        assert os.path.isfile(str(tmp_path / "report" / "report.md"))

    def test_check_failure_exits_nonzero(self, tmp_path, sample_records, capsys):
        records = [record for record in sample_records
                   if record["workload"] != "many-to-one-flood"]
        records.append(_record("many-to-one-flood", {"queue_words": 128},
                               {"verified": True, "cycles": 109, "nacks": 3,
                                "retransmissions": 3, "max_queue_words": 33}))
        path = self._write_manifest(tmp_path, records)
        assert cli.main(["report", path, "--check"]) == 1
        assert "outside" in capsys.readouterr().err
        # Without --check the same render exits zero.
        assert cli.main(["report", path]) == 0

    def test_missing_manifest_is_usage_error(self, tmp_path, capsys):
        assert cli.main(["report", str(tmp_path / "nope.json")]) == 2
        assert "repro report:" in capsys.readouterr().err

    def test_empty_manifest_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "sweep-results.json"
        path.write_text(json.dumps({"schema_version": SCHEMA_VERSION, "runs": []}))
        assert cli.main(["report", str(path)]) == 2
        assert "no valid records" in capsys.readouterr().err

    def test_format_md_flag(self, tmp_path, sample_records):
        path = self._write_manifest(tmp_path, sample_records)
        out_dir = str(tmp_path / "md-only")
        assert cli.main(["report", path, "-o", out_dir, "--format", "md"]) == 0
        assert os.listdir(out_dir) == ["report.md"]


class TestSweepReportIntegration:
    def test_sweep_report_flag_renders(self, tmp_path):
        from repro.sweep.runner import SweepRunner
        from repro.sweep.spec import AxesGroup, SweepSpec

        spec = SweepSpec(name="tiny", groups=[
            AxesGroup("gtlb-mapping", params={"lookups": 50},
                      axes={"pages_per_node": [1, 2]}),
            AxesGroup("area-model"),
        ])
        runner = SweepRunner(results_dir=str(tmp_path), report=True,
                             log=lambda message: None)
        result = runner.run(spec)
        assert result.ok
        report_dir = tmp_path / "report"
        assert (report_dir / "report.md").is_file()
        assert any(name.endswith(".svg") for name in os.listdir(report_dir))
