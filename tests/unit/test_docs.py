"""Documentation health: every relative Markdown link must resolve.

This is the docs link check CI runs (over ``README.md`` and ``docs/**.md``,
including the committed golden report); anchors and external URLs are out
of scope — the check is that no committed page links to a file that does
not exist in the repository.
"""

import os
import re

import pytest

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))

#: Inline Markdown links/images: [text](target) / ![alt](target).
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")


def _markdown_files():
    paths = [os.path.join(REPO_ROOT, "README.md")]
    docs = os.path.join(REPO_ROOT, "docs")
    for dirpath, _, filenames in os.walk(docs):
        for filename in sorted(filenames):
            if filename.endswith(".md"):
                paths.append(os.path.join(dirpath, filename))
    return paths


def _relative_links(path):
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    # Fenced code blocks may show example links; skip them.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


def test_markdown_files_exist():
    paths = _markdown_files()
    assert len(paths) >= 5  # README + the docs site
    assert any(path.endswith("architecture.md") for path in paths)


@pytest.mark.parametrize(
    "path", _markdown_files(), ids=lambda p: os.path.relpath(p, REPO_ROOT)
)
def test_relative_links_resolve(path):
    base = os.path.dirname(path)
    broken = []
    for target in _relative_links(path):
        resolved = os.path.normpath(os.path.join(base, target))
        if not os.path.exists(resolved):
            broken.append(target)
    assert not broken, f"broken links in {os.path.relpath(path, REPO_ROOT)}: {broken}"


def test_readme_links_into_docs():
    with open(os.path.join(REPO_ROOT, "README.md"), "r", encoding="utf-8") as handle:
        text = handle.read()
    for target in ("docs/architecture.md", "docs/cli.md", "docs/traces.md",
                   "docs/sweeps.md", "docs/snapshots.md"):
        assert target in text, f"README.md does not link {target}"


def test_traces_page_is_linked_from_architecture_and_cli():
    """docs/traces.md is the trace-format interface page; the architecture
    module map and the CLI reference must point at it."""
    for name in ("architecture.md", "cli.md"):
        with open(os.path.join(REPO_ROOT, "docs", name), "r", encoding="utf-8") as handle:
            assert "traces.md" in handle.read(), f"docs/{name} does not link traces.md"
