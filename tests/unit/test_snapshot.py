"""Unit tests for the repro.snapshot subsystem: the value codec, the config
serialisation, the file format, and machine-level save/restore plumbing."""

import json

import pytest

from repro import MMachine, MachineConfig
from repro.cluster.cluster import RegWrite
from repro.events.records import EventRecord, EventType
from repro.isa.assembler import assemble
from repro.isa.operations import LabelRef
from repro.isa.registers import RegFile, RegisterRef
from repro.memory.guarded_pointer import GuardedPointer, PointerPermission
from repro.memory.page_table import BlockStatus, LptEntry
from repro.memory.requests import MemOpKind, MemRequest
from repro.network.gtlb import GtlbEntry
from repro.network.message import Message, MessageKind
from repro.snapshot import (
    ConfigMismatchError,
    SNAPSHOT_SCHEMA_VERSION,
    SnapshotError,
    config_from_dict,
    config_to_dict,
    decode_value,
    encode_value,
    read_snapshot,
    write_snapshot,
)
from repro.snapshot.format import validate_document


def roundtrip(value):
    # Force a real JSON round trip so int keys / tuples cannot leak through.
    return decode_value(json.loads(json.dumps(encode_value(value))))


class TestValueCodec:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, -7, 1 << 70, 0.0, 2.5, -1e300, "text", "",
    ])
    def test_scalars(self, value):
        result = roundtrip(value)
        assert result == value and type(result) is type(value)

    def test_non_finite_floats(self):
        assert roundtrip(float("inf")) == float("inf")
        assert roundtrip(float("-inf")) == float("-inf")
        nan = roundtrip(float("nan"))
        assert nan != nan

    def test_containers(self):
        value = {"a": [1, (2, 3)], "b": {4: "x"}, "c": {1, 2, 3}}
        assert roundtrip(value) == value
        assert isinstance(roundtrip((1, 2))[0], int)

    def test_int_keyed_dict_preserves_key_type(self):
        result = roundtrip({3: "three"})
        assert result == {3: "three"}
        assert isinstance(next(iter(result)), int)

    def test_guarded_pointer(self):
        pointer = GuardedPointer(0x40000, 6, PointerPermission.rw())
        assert roundtrip(pointer) == pointer

    def test_register_refs(self):
        assert roundtrip(RegisterRef(RegFile.INT, 5)) == RegisterRef(RegFile.INT, 5)
        remote = RegisterRef(RegFile.FP, 2, cluster=1)
        assert roundtrip(remote) == remote
        special = RegisterRef(RegFile.SPECIAL, 0, None, "net")
        assert roundtrip(special) == special

    def test_label_ref_and_block_status(self):
        assert roundtrip(LabelRef("loop")) == LabelRef("loop")
        status = roundtrip(BlockStatus.DIRTY)
        assert status is BlockStatus.DIRTY

    def test_mem_request_preserves_req_id(self):
        request = MemRequest(kind=MemOpKind.STORE, address=0x40010, data=9,
                             vthread=2, cluster=1, sync_pre="e", sync_post="f")
        copy = roundtrip(request)
        assert copy == request
        assert copy.req_id == request.req_id

    def test_event_record_with_request_in_extra(self):
        request = MemRequest(kind=MemOpKind.LOAD, address=0x40000,
                             dest=RegisterRef(RegFile.INT, 4))
        record = EventRecord(event_type=EventType.SYNC_FAULT, address=0x40000,
                             vthread=1, cycle=17,
                             extra={"request": request, "sync_bit": 0})
        copy = roundtrip(record)
        assert copy == record
        assert copy.extra["request"].req_id == request.req_id

    def test_nested_nack_message(self):
        original = Message(kind=MessageKind.DATA, source_node=0, dest_node=1,
                           dip=3, dest_address=0x40000, body=[1, 2, 3])
        nack = Message(kind=MessageKind.NACK, source_node=1, dest_node=0,
                       priority=1, returned=original)
        copy = roundtrip(nack)
        assert copy == nack
        assert copy.returned.msg_id == original.msg_id

    def test_reg_write(self):
        write = RegWrite(vthread=1, ref=RegisterRef(RegFile.INT, 3), value=42,
                         clear_pending=True, origin="memory")
        assert roundtrip(write) == write

    def test_lpt_and_gtlb_entries(self):
        lpt = LptEntry(virtual_page=3, physical_frame=9, writable=False,
                       block_status=[BlockStatus.INVALID] * 64)
        assert roundtrip(lpt) == lpt
        gtlb = GtlbEntry(base_page=0x80, page_group_length=16,
                         start_node=(1, 0, 0), extent=(1, 1, 0), pages_per_node=2)
        assert roundtrip(gtlb) == gtlb

    def test_program_decodes_to_shared_object(self):
        program = assemble("add i1, i1, #1\nhalt", name="tiny")
        first = roundtrip(program)
        second = roundtrip(program)
        assert first is second
        assert len(first) == len(program)
        assert first.labels == program.labels

    def test_unencodable_value_raises(self):
        with pytest.raises(SnapshotError):
            encode_value(object())


class TestConfigSerialisation:
    def test_round_trip(self):
        config = MachineConfig.small(4, 4, 1)
        config.sim.kernel = "naive"
        config.runtime.shared_memory_mode = "coherent"
        config.cluster.issue_policy = "hep"
        rebuilt = config_from_dict(json.loads(json.dumps(config_to_dict(config))))
        assert config_to_dict(rebuilt) == config_to_dict(config)
        assert rebuilt.network.mesh_shape == (4, 4, 1)

    def test_unknown_field_is_rejected(self):
        document = config_to_dict(MachineConfig())
        document["memory"]["flux_capacitor"] = 1
        with pytest.raises(SnapshotError):
            config_from_dict(document)


class TestFileFormat:
    def _machine(self):
        machine = MMachine(MachineConfig.single_node())
        machine.map_on_node(0, 0x10000, num_pages=1)
        machine.write_word(0x10000, 5)
        machine.load_hthread(0, 0, 0, "ld i2, i1\nadd i2, i2, #1\nst i2, i1\nhalt",
                             registers={"i1": 0x10000})
        machine.run(20)
        return machine

    def test_document_shape(self):
        document = self._machine().snapshot_document()
        assert document["format"] == "repro-mmachine-snapshot"
        assert document["schema_version"] == SNAPSHOT_SCHEMA_VERSION
        assert "config" in document and "machine" in document
        validate_document(document)

    def test_write_and_read(self, tmp_path):
        machine = self._machine()
        path = str(tmp_path / "snap.json")
        assert machine.save_snapshot(path) == path
        document = read_snapshot(path)
        assert document["machine"]["cycle"] == machine.cycle

    def test_gzip_round_trip(self, tmp_path):
        machine = self._machine()
        path = str(tmp_path / "snap.json.gz")
        machine.save_snapshot(path)
        restored = MMachine.from_snapshot(path)
        assert restored.cycle == machine.cycle

    def test_unsupported_schema_version_is_refused(self, tmp_path):
        document = self._machine().snapshot_document()
        document["schema_version"] = 999
        path = str(tmp_path / "future.json")
        write_snapshot(document, path)
        with pytest.raises(SnapshotError):
            read_snapshot(path)

    def test_garbage_file_is_refused(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(SnapshotError):
            read_snapshot(str(path))
        with pytest.raises(SnapshotError):
            read_snapshot(str(tmp_path / "missing.json"))

    def test_restore_refuses_mismatched_config(self):
        document = self._machine().snapshot_document()
        other = MMachine(MachineConfig.small(2, 1, 1))
        with pytest.raises(ConfigMismatchError) as excinfo:
            other.restore_snapshot(document)
        assert "network" in str(excinfo.value)

    def test_restore_refuses_wrong_node_count_state(self):
        document = self._machine().snapshot_document()
        machine = MMachine(MachineConfig.single_node())
        document["machine"]["nodes"] = []
        with pytest.raises(SnapshotError):
            machine.load_state_dict(document["machine"])

    def test_from_snapshot_restores_architectural_state(self):
        machine = self._machine()
        machine.run_until_user_done()
        restored = MMachine.from_snapshot(machine.snapshot_document())
        assert restored.cycle == machine.cycle
        assert restored.read_word(0x10000) == 6
        assert restored.register_value(0, 0, 0, "i2") == 6
        assert restored.thread_halted(0, 0, 0)
        assert restored.stats().summary() == machine.stats().summary()

    def test_state_dict_is_stable_across_round_trip(self):
        machine = self._machine()
        state = machine.state_dict()
        restored = MMachine.from_snapshot(machine.snapshot_document())
        assert restored.state_dict() == state
