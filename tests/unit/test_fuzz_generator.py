"""Unit tests for the seeded fuzz program generator (`repro.fuzz.generator`).

The generator's contract: byte-identical determinism from
``(seed, knobs fingerprint)``, JSON-round-trippable program structure (the
repro-file format), and legal-by-construction output — every generated
program builds and loads on a real machine without touching an unmapped
address or an occupied context.
"""

import json

import pytest

from repro.fuzz.generator import (
    VIOLATION_MODES,
    GeneratedProgram,
    GeneratorKnobs,
    ThreadSpec,
    generate_program,
    render_thread,
)


class TestDeterminism:
    def test_same_seed_same_program(self):
        assert generate_program(7).to_dict() == generate_program(7).to_dict()

    def test_different_seeds_differ(self):
        programs = {json.dumps(generate_program(seed).to_dict()) for seed in range(8)}
        assert len(programs) > 1

    def test_knobs_change_the_stream(self):
        default = generate_program(3)
        fat = generate_program(3, GeneratorKnobs(max_threads=16))
        assert default.to_dict() != fat.to_dict()

    def test_fingerprint_binds_seed_and_knobs(self):
        a = generate_program(3)
        b = generate_program(4)
        c = generate_program(3, GeneratorKnobs(max_threads=16))
        assert a.fingerprint == generate_program(3).fingerprint
        assert len({a.fingerprint, b.fingerprint, c.fingerprint}) == 3


class TestSerialisation:
    @pytest.mark.parametrize("seed", range(6))
    def test_json_round_trip(self, seed):
        program = generate_program(seed)
        document = json.loads(json.dumps(program.to_dict()))
        assert GeneratedProgram.from_dict(document).to_dict() == program.to_dict()

    def test_knobs_round_trip(self):
        knobs = GeneratorKnobs(mesh=(2, 2, 1), fault_density=0.75, nack_storm=True)
        assert GeneratorKnobs.from_params(knobs.to_params()) == knobs

    def test_thread_spec_round_trip(self):
        spec = ThreadSpec(node=1, slot=2, cluster=3, kind="compute", params={"x": 1})
        assert ThreadSpec.from_dict(spec.to_dict()) == spec


class TestLegality:
    @pytest.mark.parametrize("seed", range(10))
    def test_programs_build_and_load(self, seed):
        program = generate_program(seed)
        machine = program.build_machine()
        assert machine.cycle == 0

    def test_contexts_are_unique(self):
        program = generate_program(0, GeneratorKnobs(max_threads=16, mesh=(1, 1, 1)))
        placements = [(t.node, t.slot, t.cluster) for t in program.threads]
        assert len(placements) == len(set(placements))
        assert all(slot < 4 for _, slot, _ in placements)

    def test_violators_enable_protection(self):
        knobs = GeneratorKnobs(fault_density=1.0)
        program = generate_program(0, knobs)
        # Every drawn thread is a violator (the secded-read victim thread is
        # appended separately when flips are drawn).
        kinds = {thread.kind for thread in program.threads}
        assert "violator" in kinds
        assert kinds <= {"violator", "secded-read"}
        assert program.config_overrides["runtime.protection_enabled"] is True

    def test_zero_fault_density_is_fault_free(self):
        knobs = GeneratorKnobs(
            fault_density=0.0, secded_single_flips=0, secded_double_flips=0
        )
        for seed in range(6):
            program = generate_program(seed, knobs)
            assert all(thread.kind != "violator" for thread in program.threads)
            assert not program.single_flips
            assert not program.double_flips
            assert "runtime.protection_enabled" not in program.config_overrides

    def test_nack_storm_tightens_the_network(self):
        knobs = GeneratorKnobs(nack_storm=True, max_threads=8)
        for seed in range(12):
            program = generate_program(seed, knobs)
            if any(thread.kind == "message" for thread in program.threads):
                assert program.config_overrides["network.message_queue_words"] == 6
                break
        else:
            pytest.fail("no seed in range produced message traffic")

    def test_single_node_mesh_has_no_remote_traffic(self):
        knobs = GeneratorKnobs(mesh=(1, 1, 1), max_threads=8)
        for seed in range(6):
            program = generate_program(seed, knobs)
            kinds = {thread.kind for thread in program.threads}
            assert not kinds & {"message", "remote-read"}

    def test_flip_targets_are_mapped(self):
        knobs = GeneratorKnobs(secded_single_flips=2, secded_double_flips=1)
        for seed in range(20):
            program = generate_program(seed, knobs)
            if program.single_flips or program.double_flips:
                # build_machine raises if a flip lands on an unmapped word.
                program.build_machine()
                return
        pytest.fail("no seed in range injected any flips")


class TestRenderers:
    def test_every_violation_mode_renders(self):
        for mode in VIOLATION_MODES:
            thread = ThreadSpec(
                node=0,
                slot=0,
                cluster=0,
                kind="violator",
                params={"base": 0x10000, "mode": mode},
            )
            source, registers = render_thread(thread, remote_store_dip=0)
            assert "halt" in source
            assert registers

    def test_unknown_kind_rejected(self):
        thread = ThreadSpec(node=0, slot=0, cluster=0, kind="nonsense")
        with pytest.raises(ValueError):
            render_thread(thread, remote_store_dip=0)

    def test_unknown_violation_mode_rejected(self):
        thread = ThreadSpec(
            node=0,
            slot=0,
            cluster=0,
            kind="violator",
            params={"base": 0x10000, "mode": "nonsense"},
        )
        with pytest.raises(ValueError):
            render_thread(thread, remote_store_dip=0)
