"""Differential tests: the event kernel vs the naive reference loop.

``MachineConfig.sim.kernel`` selects between the activity-tracked,
cycle-skipping scheduler (``"event"``, the default) and the original
tick-everything loop (``"naive"``).  The two must be indistinguishable to
any observer of the architecture: identical final cycle counts, register
values, memory contents and -- the strictest part -- identical statistics,
including the per-cycle idle/stall counters the naive loop accrues on every
blocked cycle, which the event kernel reconstructs in bulk when it skips
node ticks.

Every scenario below builds the same machine twice, runs the same workload
under both kernels, and compares everything observable.
"""

import pytest

from repro import MMachine, MachineConfig
from repro.workloads.stencil import make_stencil_workload
from repro.workloads.synthetic import (
    expected_many_to_one_values,
    many_to_one_store_programs,
    remote_store_sender_program,
)

HEAP = 0x10000
REGION = 0x40000

KERNELS = ("naive", "event")


# --------------------------------------------------------------------------- helpers


def _compare_machines(naive: MMachine, event: MMachine) -> None:
    """Assert that two finished machines are observably identical."""
    assert event.cycle == naive.cycle, "final cycle counts differ"

    naive_stats = naive.stats()
    event_stats = event.stats()
    for node_naive, node_event in zip(naive_stats.node_stats, event_stats.node_stats):
        assert node_event == node_naive, f"node {node_naive['node_id']} stats differ"

    for node_naive, node_event in zip(naive.nodes, event.nodes):
        # Mesh-interface counters (not all are part of node.stats()).
        for attribute in ("acks_received", "nacks_received", "retransmissions",
                          "enqueue_rejections", "credits"):
            assert getattr(node_event.net, attribute) == getattr(node_naive.net, attribute)
        # Per-thread microarchitectural state and stall accounting -- the
        # part the event kernel reconstructs in bulk for skipped cycles.
        for cluster_naive, cluster_event in zip(node_naive.clusters, node_event.clusters):
            assert cluster_event.icache.fetches == cluster_naive.icache.fetches
            for ctx_naive, ctx_event in zip(cluster_naive.contexts, cluster_event.contexts):
                assert ctx_event.state is ctx_naive.state
                assert ctx_event.pc == ctx_naive.pc
                assert ctx_event.instructions_issued == ctx_naive.instructions_issued
                assert ctx_event.stall_cycles == ctx_naive.stall_cycles
                assert dict(ctx_event.stall_reasons) == dict(ctx_naive.stall_reasons)
                assert ctx_event.start_cycle == ctx_naive.start_cycle
                assert ctx_event.halt_cycle == ctx_naive.halt_cycle

    for attribute in ("messages_injected", "messages_delivered", "total_latency",
                      "total_hops", "link_contention_cycles"):
        assert getattr(event.mesh, attribute) == getattr(naive.mesh, attribute)


def _run_both(scenario):
    """Run *scenario(kernel)* under both kernels and compare the machines."""
    machines = {kernel: scenario(kernel) for kernel in KERNELS}
    _compare_machines(machines["naive"], machines["event"])
    return machines


def _config(shape=(2, 1, 1), mode="remote", kernel="event", **network_overrides):
    config = MachineConfig.small(*shape)
    config.runtime.shared_memory_mode = mode
    config.sim.kernel = kernel
    for key, value in network_overrides.items():
        setattr(config.network, key, value)
    return config


# --------------------------------------------------------------------- workload: stencil


class TestStencilEquivalence:
    """Compute-heavy single-node workloads (Figure 5 kernels)."""

    @pytest.mark.parametrize("kind, n_hthreads", [("7pt", 1), ("7pt", 4), ("27pt", 2)])
    def test_stencil(self, kind, n_hthreads):
        def scenario(kernel):
            machine = MMachine(_config(shape=(1, 1, 1), kernel=kernel))
            machine.map_on_node(0, HEAP, num_pages=16)
            workload = make_stencil_workload(kind=kind, n_hthreads=n_hthreads)
            workload.setup(machine)
            machine.run_until_user_done(max_cycles=30000)
            assert workload.verify(machine)
            return machine

        _run_both(scenario)

    def test_stencil_under_hep_barrel_policy(self):
        """The HEP barrel rotates the scanned slot with the clock, so the
        event kernel's bulk stall accounting must follow cycle residues."""

        def scenario(kernel):
            config = _config(shape=(1, 1, 1), kernel=kernel)
            config.cluster.issue_policy = "hep"
            machine = MMachine(config)
            machine.map_on_node(0, HEAP, num_pages=16)
            workload = make_stencil_workload(kind="7pt", n_hthreads=2)
            workload.setup(machine)
            machine.run_until_user_done(max_cycles=60000)
            assert workload.verify(machine)
            return machine

        _run_both(scenario)


# ------------------------------------------------------------- workload: message passing


class TestMessagePassingEquivalence:
    """User-level SEND/receive traffic, including NACK/retransmission."""

    def test_ping_pong(self):
        """Two nodes bouncing remote stores at each other."""

        def scenario(kernel):
            machine = MMachine(_config(kernel=kernel))
            machine.map_on_node(0, REGION, num_pages=1)
            machine.map_on_node(1, REGION + 0x1000, num_pages=1)
            dip = machine.runtime.dip("remote_store")
            machine.load_hthread(0, 0, 0, remote_store_sender_program(
                REGION + 0x1000, dip, 8))
            machine.load_hthread(1, 0, 0, remote_store_sender_program(
                REGION, dip, 8, value_base=2000))
            machine.run_until_user_done(max_cycles=60000)
            for offset in range(8):
                assert machine.read_word(REGION + offset) == 2000 + offset
                assert machine.read_word(REGION + 0x1000 + offset) == 1000 + offset
            return machine

        _run_both(scenario)

    def test_many_to_one_flood_with_contention(self):
        def scenario(kernel):
            machine = MMachine(_config(shape=(2, 2, 1), kernel=kernel))
            machine.map_on_node(0, REGION, num_pages=1)
            dip = machine.runtime.dip("remote_store")
            for sender, program in many_to_one_store_programs(3, 12, REGION, dip).items():
                machine.load_hthread(sender + 1, 0, 0, program)
            machine.run_until_user_done(max_cycles=60000)
            for offset, value in expected_many_to_one_values(3, 12):
                assert machine.read_word(REGION + offset) == value
            return machine

        _run_both(scenario)

    def test_small_queue_nack_and_retransmit(self):
        """Return-to-sender throttling: retransmission back-offs are one of
        the scheduled-wakeup sources the event kernel must honour exactly.
        Three producers bursting at one consumer with a tiny queue force
        NACKs and retransmissions."""

        def scenario(kernel):
            machine = MMachine(_config(shape=(2, 2, 1), kernel=kernel,
                                       message_queue_words=6, retransmit_interval=16))
            machine.map_on_node(0, REGION, num_pages=1)
            dip = machine.runtime.dip("remote_store")
            for sender, program in many_to_one_store_programs(3, 8, REGION, dip).items():
                machine.load_hthread(sender + 1, 0, 0, program)
            machine.run_until_user_done(max_cycles=120000)
            for offset, value in expected_many_to_one_values(3, 8):
                assert machine.read_word(REGION + offset) == value
            assert sum(node.net.retransmissions for node in machine.nodes) > 0
            return machine

        _run_both(scenario)


# -------------------------------------------------------------- workload: remote memory


class TestRemoteMemoryEquivalence:
    """Section 4.2 transparent remote access -- the idle-heavy class the
    event kernel exists for: the faulting node sleeps through the whole
    network round-trip."""

    def test_remote_load(self):
        def scenario(kernel):
            machine = MMachine(_config(kernel=kernel))
            machine.map_on_node(1, REGION, num_pages=1)
            machine.write_word(REGION + 7, 31415)
            machine.load_hthread(0, 0, 0, "ld i5, i1\nadd i6, i5, #1\nhalt",
                                 registers={"i1": REGION + 7})
            machine.run_until(lambda m: m.thread_halted(0, 0, 0), max_cycles=5000)
            machine.run_until_quiescent(max_cycles=5000)
            assert machine.register_value(0, 0, 0, "i6") == 31416
            return machine

        _run_both(scenario)

    def test_remote_store_with_ltlb_miss(self):
        def scenario(kernel):
            machine = MMachine(_config(kernel=kernel))
            machine.map_on_node(1, REGION, num_pages=1, preload_ltlb=False)
            machine.load_hthread(0, 0, 0, "st i6, i1\nhalt",
                                 registers={"i1": REGION + 9, "i6": 2718})
            machine.run_until_quiescent(max_cycles=10000)
            assert machine.read_word(REGION + 9) == 2718
            return machine

        _run_both(scenario)

    def test_fixed_cycle_run_snapshots_identical(self):
        """run(N) must land on the same intermediate state, not just the
        same final state."""

        def scenario(kernel):
            machine = MMachine(_config(kernel=kernel))
            machine.map_on_node(1, REGION, num_pages=1)
            machine.write_word(REGION, 5)
            machine.load_hthread(0, 0, 0, "ld i5, i1\nadd i6, i5, #100\nhalt",
                                 registers={"i1": REGION})
            machine.run(40)
            machine.run(1000)
            assert machine.cycle == 1040
            return machine

        _run_both(scenario)


# ----------------------------------------------------------- workload: coherent caching


class TestCoherentEquivalence:
    """Section 4.3 software DRAM caching: native handlers with busy charges,
    directory recalls and invalidation round-trips."""

    def test_read_share_write_upgrade_and_recall(self):
        def scenario(kernel):
            machine = MMachine(_config(shape=(4, 1, 1), mode="coherent", kernel=kernel))
            machine.map_on_node(0, REGION, num_pages=1)
            machine.write_word(REGION, 5)
            # Node 1 reads, node 2 writes (invalidating node 1), node 0
            # recalls the dirty block by reading it back.
            machine.load_hthread(1, 0, 0, "ld i5, i1\nhalt", registers={"i1": REGION})
            machine.run_until(lambda m: m.register_full(1, 0, 0, "i5"), max_cycles=30000)
            machine.load_hthread(2, 0, 0, "st i6, i1\nhalt",
                                 registers={"i1": REGION, "i6": 42})
            machine.run_until_quiescent(max_cycles=60000)
            machine.load_hthread(0, 0, 0, "ld i7, i1\nhalt", registers={"i1": REGION})
            machine.run_until(lambda m: m.register_full(0, 0, 0, "i7"), max_cycles=60000)
            assert machine.register_value(0, 0, 0, "i7") == 42
            machine.run_until_quiescent(max_cycles=60000)
            return machine

        machines = _run_both(scenario)
        for machine in machines.values():
            assert machine.runtime.coherence.invalidations >= 1


# ------------------------------------------------------------------- kernel mechanics


class TestKernelMechanics:
    """Direct checks of the scheduler itself."""

    def test_event_kernel_is_default(self):
        machine = MMachine(MachineConfig.small(1, 1, 1))
        assert machine.kernel is not None
        assert machine.config.sim.kernel == "event"

    def test_naive_kernel_has_no_scheduler(self):
        config = MachineConfig.small(1, 1, 1)
        config.sim.kernel = "naive"
        assert MMachine(config).kernel is None

    def test_invalid_kernel_rejected(self):
        config = MachineConfig.small(1, 1, 1)
        config.sim.kernel = "threaded"
        with pytest.raises(ValueError):
            MMachine(config)

    def test_event_kernel_skips_node_ticks(self):
        """The point of the refactor: an idle-heavy remote access must cost
        far fewer node ticks than cycles x nodes."""
        machine = MMachine(_config(shape=(2, 2, 1)))
        machine.map_on_node(3, REGION, num_pages=1)
        machine.write_word(REGION, 1)
        machine.load_hthread(0, 0, 0, "ld i5, i1\nhalt", registers={"i1": REGION})
        machine.run_until_quiescent(max_cycles=10000)
        naive_ticks = machine.cycle * machine.num_nodes
        assert machine.kernel.node_ticks < naive_ticks / 2
        assert machine.kernel.cycles_skipped > 0

    def test_timeout_behaviour_matches(self):
        """A machine that never quiesces times out identically, and the
        event kernel reports the same final cycle."""
        results = {}
        for kernel in KERNELS:
            config = _config(shape=(1, 1, 1), mode="none", kernel=kernel)
            machine = MMachine(config)
            machine.map_on_node(0, REGION, num_pages=1, preload_ltlb=False)
            # The LTLB miss raises an event that no handler ever consumes, so
            # has_pending_work stays true forever.
            machine.load_hthread(0, 0, 0, "ld i5, i1\nhalt", registers={"i1": REGION})
            with pytest.raises(TimeoutError):
                machine.run_until_quiescent(max_cycles=500)
            results[kernel] = (machine.cycle, machine.stats().node_stats)
        assert results["event"] == results["naive"]

    def test_predicate_reading_sleeping_node_statistics(self):
        """run_until predicates may read per-cycle statistics, not just
        architectural state; the kernel must settle its lazy idle accounting
        before every predicate evaluation so a counter on a *sleeping* node
        (here: idle_cycles of a node that never runs anything) advances
        exactly as under the naive loop."""

        def scenario(kernel):
            machine = MMachine(_config(kernel=kernel))
            machine.map_on_node(1, REGION, num_pages=1)
            machine.write_word(REGION, 2)
            machine.load_hthread(0, 0, 0, "ld i5, i1\nhalt", registers={"i1": REGION})
            stop = machine.run_until(
                lambda m: m.nodes[1].clusters[0].idle_cycles >= 20, max_cycles=5000
            )
            assert stop == machine.cycle
            return machine

        machines = _run_both(scenario)
        assert machines["event"].cycle == machines["naive"].cycle

    def test_step_loop_matches_naive(self):
        """Manual step() loops (the public single-cycle API) stay exact even
        with external mutation between steps."""
        machines = {}
        for kernel in KERNELS:
            machine = MMachine(_config(kernel=kernel))
            machine.map_on_node(1, REGION, num_pages=1)
            machine.write_word(REGION, 9)
            machine.load_hthread(0, 0, 0, "ld i5, i1\nhalt", registers={"i1": REGION})
            for cycle in range(300):
                machine.step()
                if cycle == 150:
                    # Mutate mid-run: load a second thread while nodes idle.
                    machine.load_hthread(1, 0, 0, "mov i2, #7\nhalt")
            machines[kernel] = machine
        _compare_machines(machines["naive"], machines["event"])
        assert machines["event"].register_value(1, 0, 0, "i2") == 7
