"""Integration tests for the sweep runner: execution, resume, parallel fan-out
and failure handling through the CLI."""

import json
import os

import pytest

from repro.cli import main
from repro.sweep import SweepRunner, SweepSpec, AxesGroup, validate_results
from repro.sweep.runner import RESULTS_FILENAME, RUNS_DIRNAME


def _tiny_spec():
    return SweepSpec(
        name="tiny",
        groups=[
            AxesGroup("stencil", axes={"kind": ["7pt"], "n_hthreads": [1, 2]}),
            AxesGroup("area-model"),
        ],
    )


def _quiet(message):
    del message


class TestRunnerCore:
    def test_inline_run_produces_records_and_manifest(self, tmp_path):
        runner = SweepRunner(results_dir=str(tmp_path), jobs=1, log=_quiet)
        result = runner.run(_tiny_spec())
        assert result.ok
        assert result.executed == 3 and result.skipped == 0
        assert sorted(os.listdir(tmp_path / RUNS_DIRNAME))
        document = json.loads((tmp_path / RESULTS_FILENAME).read_text())
        assert validate_results(document) == []
        assert document["counts"] == {"total": 3, "ok": 3, "failed": 0,
                                      "reused": 0, "executed": 3}

    def test_resume_skips_completed_runs(self, tmp_path):
        runner = SweepRunner(results_dir=str(tmp_path), jobs=1, log=_quiet)
        first = runner.run(_tiny_spec())
        second = runner.run(_tiny_spec())
        assert second.executed == 0 and second.skipped == 3
        assert ([r["metrics"] for r in first.records]
                == [r["metrics"] for r in second.records])

    def test_force_reruns_everything(self, tmp_path):
        runner = SweepRunner(results_dir=str(tmp_path), jobs=1, log=_quiet)
        runner.run(_tiny_spec())
        forced = SweepRunner(results_dir=str(tmp_path), jobs=1, force=True,
                             log=_quiet).run(_tiny_spec())
        assert forced.executed == 3 and forced.skipped == 0

    def test_corrupt_record_is_rerun(self, tmp_path):
        runner = SweepRunner(results_dir=str(tmp_path), jobs=1, log=_quiet)
        result = runner.run(_tiny_spec())
        victim = result.records[0]["run_id"]
        (tmp_path / RUNS_DIRNAME / (victim + ".json")).write_text("{not json")
        second = runner.run(_tiny_spec())
        assert second.executed == 1 and second.skipped == 2

    def test_parallel_matches_inline(self, tmp_path):
        inline = SweepRunner(results_dir=str(tmp_path / "a"), jobs=1,
                             log=_quiet).run(_tiny_spec())
        parallel = SweepRunner(results_dir=str(tmp_path / "b"), jobs=2,
                               log=_quiet).run(_tiny_spec())
        by_id = {r["run_id"]: r["metrics"] for r in parallel.records}
        for record in inline.records:
            assert by_id[record["run_id"]] == record["metrics"]

    def test_failed_run_is_recorded_and_retried(self, tmp_path):
        spec = SweepSpec(name="mixed", groups=[
            AxesGroup("area-model"),
            AxesGroup("stencil", params={"kind": "bogus"}),
        ])
        runner = SweepRunner(results_dir=str(tmp_path), jobs=1, log=_quiet)
        result = runner.run(spec)
        assert not result.ok
        assert len(result.failed) == 1
        assert "error" in result.failed[0]
        document = json.loads((tmp_path / RESULTS_FILENAME).read_text())
        assert document["counts"]["failed"] == 1
        # The failed run is retried on resume; the ok run is reused.
        second = runner.run(spec)
        assert second.executed == 1 and second.skipped == 1

    def test_records_persist_before_the_manifest_is_written(self, tmp_path, monkeypatch):
        """Per-run records are stored as each run completes, so an interrupted
        sweep (simulated here by failing the final manifest write) resumes
        from the completed runs instead of starting over."""
        runner = SweepRunner(results_dir=str(tmp_path), jobs=1, log=_quiet)

        def boom(spec, result):
            raise RuntimeError("interrupted before the manifest")

        monkeypatch.setattr(runner, "_write_manifest", boom)
        with pytest.raises(RuntimeError):
            runner.run(_tiny_spec())
        stored = list((tmp_path / RUNS_DIRNAME).glob("*.json"))
        assert len(stored) == 3
        resumed = SweepRunner(results_dir=str(tmp_path), jobs=1, log=_quiet)
        assert resumed.run(_tiny_spec()).executed == 0

    def test_schema_invalid_metrics_become_a_failed_record(self, tmp_path, monkeypatch):
        """A factory returning non-scalar metrics yields a failed record and
        a partial manifest, not an aborted sweep."""
        from repro.workloads import factories

        monkeypatch.setitem(
            factories.WORKLOADS, "area-model", lambda **kw: {"counts": [1, 2, 3]}
        )
        runner = SweepRunner(results_dir=str(tmp_path), jobs=1, log=_quiet)
        result = runner.run(_tiny_spec())
        assert len(result.failed) == 1
        assert "not a JSON scalar" in result.failed[0]["error"]
        assert (tmp_path / RESULTS_FILENAME).exists()

    def test_invalid_spec_raises(self, tmp_path):
        runner = SweepRunner(results_dir=str(tmp_path), jobs=1, log=_quiet)
        with pytest.raises(ValueError, match="unknown workload"):
            runner.run(SweepSpec(name="bad", groups=[AxesGroup("nope")]))

    def test_zero_jobs_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            SweepRunner(results_dir=str(tmp_path), jobs=0)


class TestCliSweep:
    def test_sweep_spec_file_end_to_end(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(_tiny_spec().to_dict()))
        results_dir = tmp_path / "out"
        assert main(["sweep", "--spec-file", str(spec_path),
                     "--results-dir", str(results_dir), "--jobs", "2"]) == 0
        manifest = results_dir / RESULTS_FILENAME
        assert capsys.readouterr().out.strip() == str(manifest)
        assert main(["validate", str(manifest)]) == 0

    def test_worker_failure_exits_nonzero_with_partial_manifest(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SweepSpec(name="mixed", groups=[
            AxesGroup("area-model"),
            AxesGroup("stencil", params={"kind": "bogus"}),
        ]).to_dict()))
        results_dir = tmp_path / "out"
        assert main(["sweep", "--spec-file", str(spec_path),
                     "--results-dir", str(results_dir)]) == 1
        err = capsys.readouterr().err
        assert "1 of 2 runs failed" in err
        assert "partial results" in err
        document = json.loads((results_dir / RESULTS_FILENAME).read_text())
        assert document["counts"] == {"total": 2, "ok": 1, "failed": 1,
                                      "reused": 0, "executed": 2}
        # The partial manifest is schema-valid once failures are allowed.
        assert main(["validate", str(results_dir / RESULTS_FILENAME),
                     "--allow-failed"]) == 0
