"""The trace-category contract.

``repro.core.trace`` documents its categories as a stable interface (the
Figure 9 timelines and several analyses are computed from them).  These
tests pin the contract down from both directions:

* every category a representative workload mix emits must be documented in
  :data:`repro.core.trace.TRACE_CATEGORIES`, and
* every documented category must actually be exercised by the mix -- a
  category nothing can emit any more is as much a contract break as an
  undocumented one.
"""

import pytest

from repro import MMachine, MachineConfig
from repro.core.trace import HANDLER_CATEGORY_PREFIX, TRACE_CATEGORIES

HEAP = 0x10000
REGION = 0x40000


def _collect(machine: MMachine) -> set:
    return {event.category for event in machine.tracer.events}


def _machine(mesh=(2, 1, 1), mode="remote", **overrides) -> MMachine:
    config = MachineConfig.small(*mesh)
    config.runtime.shared_memory_mode = mode
    for key, value in overrides.items():
        section, _, attr = key.partition(".")
        setattr(getattr(config, section), attr, value)
    return MMachine(config)


@pytest.fixture(scope="module")
def emitted_categories() -> set:
    """Union of categories from a workload mix chosen to reach every
    documented category."""
    categories = set()

    # Remote reads through the Section 4.2 runtime: mem_issue, cache paths,
    # ltlb_miss, event_enqueue, send, msg_*, xregwr, reg_write, halt, ...
    machine = _machine()
    machine.map_on_node(1, REGION, num_pages=1)
    machine.write_word(REGION, 7)
    machine.load_hthread(
        0, 0, 0,
        "ld i4, i1\nmark i4\nst i4, i2\nhalt",
        registers={"i1": REGION, "i2": REGION + 1},
    )
    machine.run_until_user_done(max_cycles=50_000)
    categories |= _collect(machine)

    # Synchronizing-fault retry (handler_dispatch / handler_sync_retry /
    # sync_fault): a consuming load on an empty word, satisfied later.
    machine = _machine(mesh=(1, 1, 1))
    machine.map_on_node(0, HEAP, num_pages=1)
    machine.write_word(HEAP, 0, sync_bit=0)
    machine.load_hthread(0, 0, 0, "ld.fe i4, i1\nhalt", registers={"i1": HEAP})
    machine.load_hthread(
        0, 1, 0, "st.ef i5, i1\nhalt", registers={"i1": HEAP, "i5": 9}
    )
    machine.run_until_user_done(max_cycles=50_000)
    categories |= _collect(machine)

    # Coherence runtime (block_status_fault + handler traffic).
    machine = _machine(mode="coherent")
    machine.map_on_node(1, REGION, num_pages=1)
    machine.write_word(REGION, 3)
    machine.load_hthread(0, 0, 0, "ld i4, i1\nhalt", registers={"i1": REGION})
    machine.run_until_user_done(max_cycles=50_000)
    categories |= _collect(machine)

    # Several producers flooding one undersized queue: msg_reject, msg_nack,
    # msg_retransmit.
    from repro.workloads.synthetic import many_to_one_store_programs

    machine = _machine(mesh=(2, 2, 1), **{
        "network.message_queue_words": 6,
        "network.retransmit_interval": 16,
    })
    machine.map_on_node(0, REGION, num_pages=1)
    dip = machine.runtime.dip("remote_store")
    for sender, program in many_to_one_store_programs(3, 8, REGION, dip).items():
        machine.load_hthread(sender + 1, 0, 0, program)
    machine.run_until_user_done(max_cycles=400_000)
    categories |= _collect(machine)

    # A synchronous protection exception.
    machine = _machine(mesh=(1, 1, 1))
    machine.load_hthread(0, 0, 0, "xregwr i1, i2\nhalt",
                         registers={"i1": 0, "i2": 0})
    machine.run(200)
    categories |= _collect(machine)

    return categories


def test_every_emitted_category_is_documented(emitted_categories):
    undocumented = emitted_categories - TRACE_CATEGORIES
    assert not undocumented, (
        f"trace categories emitted but not documented in "
        f"repro.core.trace: {sorted(undocumented)}"
    )


def test_every_documented_category_is_exercised(emitted_categories):
    unexercised = TRACE_CATEGORIES - emitted_categories
    assert not unexercised, (
        f"documented trace categories the workload mix never emitted "
        f"(dead documentation or missing coverage): {sorted(unexercised)}"
    )


def test_handler_categories_use_the_documented_prefix(emitted_categories):
    handler_categories = {
        category for category in emitted_categories
        if category.startswith(HANDLER_CATEGORY_PREFIX)
    }
    assert handler_categories, "workload mix exercised no handler categories"
    assert handler_categories <= TRACE_CATEGORIES
