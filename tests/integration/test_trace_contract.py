"""The trace-category contract.

``repro.core.trace`` documents its categories as a stable interface (the
Figure 9 timelines and several analyses are computed from them).  These
tests pin the contract down from both directions:

* every category a representative workload mix emits must be documented in
  :data:`repro.core.trace.TRACE_CATEGORIES`, and
* every documented category must actually be exercised by the mix -- a
  category nothing can emit any more is as much a contract break as an
  undocumented one.
"""

import pytest

from repro import MMachine, MachineConfig
from repro.core.trace import HANDLER_CATEGORY_PREFIX, TRACE_CATEGORIES

HEAP = 0x10000
REGION = 0x40000


def _collect(machine: MMachine) -> set:
    return {event.category for event in machine.tracer.events}


def _machine(mesh=(2, 1, 1), mode="remote", **overrides) -> MMachine:
    config = MachineConfig.small(*mesh)
    config.runtime.shared_memory_mode = mode
    for key, value in overrides.items():
        section, _, attr = key.partition(".")
        setattr(getattr(config, section), attr, value)
    return MMachine(config)


@pytest.fixture(scope="module")
def emitted_categories() -> set:
    """Union of categories from a workload mix chosen to reach every
    documented category."""
    categories = set()

    # Remote reads through the Section 4.2 runtime: mem_issue, cache paths,
    # ltlb_miss, event_enqueue, send, msg_*, xregwr, reg_write, halt, ...
    machine = _machine()
    machine.map_on_node(1, REGION, num_pages=1)
    machine.write_word(REGION, 7)
    machine.load_hthread(
        0, 0, 0,
        "ld i4, i1\nmark i4\nst i4, i2\nhalt",
        registers={"i1": REGION, "i2": REGION + 1},
    )
    machine.run_until_user_done(max_cycles=50_000)
    categories |= _collect(machine)

    # Synchronizing-fault retry (handler_dispatch / handler_sync_retry /
    # sync_fault): a consuming load on an empty word, satisfied later.
    machine = _machine(mesh=(1, 1, 1))
    machine.map_on_node(0, HEAP, num_pages=1)
    machine.write_word(HEAP, 0, sync_bit=0)
    machine.load_hthread(0, 0, 0, "ld.fe i4, i1\nhalt", registers={"i1": HEAP})
    machine.load_hthread(
        0, 1, 0, "st.ef i5, i1\nhalt", registers={"i1": HEAP, "i5": 9}
    )
    machine.run_until_user_done(max_cycles=50_000)
    categories |= _collect(machine)

    # Coherence runtime (block_status_fault + handler traffic).
    machine = _machine(mode="coherent")
    machine.map_on_node(1, REGION, num_pages=1)
    machine.write_word(REGION, 3)
    machine.load_hthread(0, 0, 0, "ld i4, i1\nhalt", registers={"i1": REGION})
    machine.run_until_user_done(max_cycles=50_000)
    categories |= _collect(machine)

    # Several producers flooding one undersized queue: msg_reject, msg_nack,
    # msg_retransmit.
    from repro.workloads.synthetic import many_to_one_store_programs

    machine = _machine(mesh=(2, 2, 1), **{
        "network.message_queue_words": 6,
        "network.retransmit_interval": 16,
    })
    machine.map_on_node(0, REGION, num_pages=1)
    dip = machine.runtime.dip("remote_store")
    for sender, program in many_to_one_store_programs(3, 8, REGION, dip).items():
        machine.load_hthread(sender + 1, 0, 0, program)
    machine.run_until_user_done(max_cycles=400_000)
    categories |= _collect(machine)

    # A synchronous protection exception.
    machine = _machine(mesh=(1, 1, 1))
    machine.load_hthread(0, 0, 0, "xregwr i1, i2\nhalt",
                         registers={"i1": 0, "i2": 0})
    machine.run(200)
    categories |= _collect(machine)

    return categories


def test_every_emitted_category_is_documented(emitted_categories):
    undocumented = emitted_categories - TRACE_CATEGORIES
    assert not undocumented, (
        f"trace categories emitted but not documented in "
        f"repro.core.trace: {sorted(undocumented)}"
    )


def test_every_documented_category_is_exercised(emitted_categories):
    unexercised = TRACE_CATEGORIES - emitted_categories
    assert not unexercised, (
        f"documented trace categories the workload mix never emitted "
        f"(dead documentation or missing coverage): {sorted(unexercised)}"
    )


def test_handler_categories_use_the_documented_prefix(emitted_categories):
    handler_categories = {
        category for category in emitted_categories
        if category.startswith(HANDLER_CATEGORY_PREFIX)
    }
    assert handler_categories, "workload mix exercised no handler categories"
    assert handler_categories <= TRACE_CATEGORIES


# ---------------------------------------------------------------------------
# Sink equivalence: the contract holds whichever sink records the run.
# ---------------------------------------------------------------------------

import json  # noqa: E402
import os  # noqa: E402
import re  # noqa: E402

from repro.api import Experiment  # noqa: E402
from repro.core.trace import encode_event  # noqa: E402

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))

#: The scenario-matrix mix, shrunk: one traffic pattern per paper section.
SINK_PARITY_WORKLOADS = (
    ("stencil", {"kind": "7pt", "n_hthreads": 2}),
    ("ping-pong", {"rounds": 4}),
    ("flood", {"messages": 8}),
    ("remote-memory", {"repeats": 4}),
    ("coherence", {"repeats": 4}),
)


def _run_with_probe(name, params, trace_dir=None):
    machines = []
    builder = Experiment.builder().workload(name, **params).probe(machines.append)
    if trace_dir is not None:
        builder = builder.trace(trace_dir, chunk_events=64)
    with builder.build() as experiment:
        result = experiment.run()
    assert result.verified, f"{name} failed under trace_dir={trace_dir}"
    return machines


def _stream(machine):
    return [
        json.dumps(encode_event(event), sort_keys=True)
        for event in machine.tracer.iter_filter()
    ]


@pytest.mark.parametrize("name,params", SINK_PARITY_WORKLOADS,
                         ids=[name for name, _ in SINK_PARITY_WORKLOADS])
def test_disk_sink_stream_is_byte_identical_to_memory(name, params, tmp_path):
    """Recording through the disk sink must not change what is recorded:
    same machines, same event streams byte-for-byte, same category sets."""
    in_memory = _run_with_probe(name, params)
    on_disk = _run_with_probe(name, params, trace_dir=tmp_path / "trace")
    assert len(in_memory) == len(on_disk)
    for memory_machine, disk_machine in zip(in_memory, on_disk):
        assert disk_machine.tracer.sink.kind == "disk"
        assert _stream(disk_machine) == _stream(memory_machine)
        assert _collect(disk_machine) == _collect(memory_machine)


def test_disk_sink_bounds_trace_memory(tmp_path):
    """A flood recorded to disk must never buffer more than one chunk of
    events in memory — the property that lets million-cycle runs finish at
    bounded RSS."""
    machines = _run_with_probe("flood", {"messages": 24}, trace_dir=tmp_path / "t")
    sinks = [machine.tracer.sink for machine in machines]
    assert all(sink.kind == "disk" for sink in sinks)
    total = sum(len(sink) for sink in sinks)
    chunks = sum(sink.stats()["chunks"] for sink in sinks)
    assert total > 64, "flood too small to exercise chunk rollover"
    assert chunks >= 2, "expected multiple flushed chunks"
    for sink in sinks:
        assert sink.peak_tail_events <= 64, (
            f"disk sink buffered {sink.peak_tail_events} events "
            f"(chunk_events=64): trace memory is not bounded"
        )


# ---------------------------------------------------------------------------
# The docs/traces.md table is the same contract, human-readable.
# ---------------------------------------------------------------------------

def _documented_in_traces_md():
    """Categories from the docs/traces.md table: the first backticked cell
    of each table row."""
    path = os.path.join(REPO_ROOT, "docs", "traces.md")
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    categories = set()
    for line in text.splitlines():
        match = re.match(r"\|\s*`([a-z0-9_*]+)`\s*\|", line)
        if match:
            categories.add(match.group(1))
    return categories


def test_docs_table_matches_trace_categories():
    """Every category in ``TRACE_CATEGORIES`` has a row in the
    docs/traces.md table and vice versa — the docs cannot drift from the
    code."""
    documented = _documented_in_traces_md()
    assert documented, "no category table found in docs/traces.md"
    missing = TRACE_CATEGORIES - documented
    stale = documented - TRACE_CATEGORIES
    assert not missing, f"categories missing from docs/traces.md: {sorted(missing)}"
    assert not stale, f"docs/traces.md rows for unknown categories: {sorted(stale)}"
