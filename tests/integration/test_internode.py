"""Whole-machine integration tests of inter-node mechanisms: user-level
message passing (Figure 7), transparent remote memory access via the event
V-Thread handlers (Section 4.2), throttling, and the software DRAM-caching /
coherence layer (Section 4.3)."""

from repro import MMachine, MachineConfig, BlockStatus
from repro.analysis.timeline import extract_remote_access_timeline
from repro.workloads.synthetic import (
    expected_many_to_one_values,
    many_to_one_store_programs,
    remote_store_sender_program,
)

REGION = 0x40000


def two_node_machine(mode="remote", **network_overrides):
    config = MachineConfig.small(2, 1, 1)
    config.runtime.shared_memory_mode = mode
    for key, value in network_overrides.items():
        setattr(config.network, key, value)
    return MMachine(config)


class TestMessagePassing:
    """Figure 7: sending and receiving a remote store message."""

    def test_user_level_remote_store_message(self):
        machine = two_node_machine()
        machine.map_on_node(1, REGION, num_pages=1)
        dip = machine.runtime.dip("remote_store")
        machine.load_hthread(0, 0, 0, f"""
            mov m0, #4242              ; message body: the value to store
            send i1, #{dip}, #1        ; Figure 7(a): SEND Raddr, Rdip, #1
            halt
        """, registers={"i1": REGION + 3})
        machine.run_until_user_done(max_cycles=5000)
        assert machine.read_word(REGION + 3) == 4242
        assert machine.nodes[0].net.messages_sent == 1
        assert machine.nodes[1].net.messages_received == 1

    def test_message_handler_runs_in_event_vthread(self):
        machine = two_node_machine()
        machine.map_on_node(1, REGION, num_pages=1)
        dip = machine.runtime.dip("remote_store")
        machine.load_hthread(0, 0, 0, f"""
            mov m0, #1
            send i1, #{dip}, #1
            halt
        """, registers={"i1": REGION})
        machine.run_until_user_done(max_cycles=5000)
        from repro.core.config import EVENT_CLUSTER_MSG_P0, EVENT_SLOT

        handler = machine.nodes[1].context(EVENT_SLOT, EVENT_CLUSTER_MSG_P0)
        assert handler.instructions_issued > 0

    def test_many_to_one_flood(self):
        machine = MMachine(MachineConfig.small(2, 2, 1))
        machine.map_on_node(0, REGION, num_pages=1)
        dip = machine.runtime.dip("remote_store")
        programs = many_to_one_store_programs(3, 12, REGION, dip)
        for sender, program in programs.items():
            machine.load_hthread(sender + 1, 0, 0, program)
        machine.run_until_user_done(max_cycles=60000)
        for offset, value in expected_many_to_one_values(3, 12):
            assert machine.read_word(REGION + offset) == value

    def test_throttling_limits_in_flight_messages(self):
        """With very few send credits the sender stalls instead of flooding
        the network (return-to-sender throttling, Section 4.1)."""
        machine = two_node_machine(send_credits=2)
        machine.map_on_node(1, REGION, num_pages=1)
        dip = machine.runtime.dip("remote_store")
        machine.load_hthread(0, 0, 0, remote_store_sender_program(REGION, dip, 20))
        machine.run_until_user_done(max_cycles=60000)
        assert all(machine.read_word(REGION + i) != 0 for i in range(20))
        assert machine.nodes[0].net.credits_in_use == 0

    def test_small_queue_causes_nack_and_retransmission(self):
        machine = two_node_machine(message_queue_words=6, send_credits=8,
                                   retransmit_interval=16)
        machine.map_on_node(1, REGION, num_pages=1)
        dip = machine.runtime.dip("remote_store")
        machine.load_hthread(0, 0, 0, remote_store_sender_program(REGION, dip, 12))
        machine.run_until_user_done(max_cycles=120000)
        assert all(machine.read_word(REGION + i) != 0 for i in range(12))

    def test_illegal_dip_faults_sender_when_protected(self):
        config = MachineConfig.small(2, 1, 1)
        config.runtime.protection_enabled = True
        machine = MMachine(config)
        machine.map_on_node(1, REGION, num_pages=1)
        machine.load_hthread(0, 0, 0, """
            mov m0, #1
            send i1, #999, #1
            halt
        """, registers={"i1": REGION})
        machine.run_until_quiescent(max_cycles=5000)
        from repro.cluster.hthread import ThreadState

        assert machine.nodes[0].context(0, 0).state is ThreadState.FAULTED
        assert machine.nodes[1].net.messages_received == 0

    def test_send_to_unmapped_address_faults_sender(self):
        machine = two_node_machine()
        machine.map_on_node(1, REGION, num_pages=1)
        machine.load_hthread(0, 0, 0, """
            mov m0, #1
            send i1, #1, #1
            halt
        """, registers={"i1": 0x900000})
        machine.run_until_quiescent(max_cycles=5000)
        from repro.cluster.hthread import ThreadState

        assert machine.nodes[0].context(0, 0).state is ThreadState.FAULTED


class TestRemoteMemoryAccess:
    """Section 4.2: transparent remote loads and stores through the LTLB-miss
    and message handlers of the event V-Thread."""

    def test_remote_load(self):
        machine = two_node_machine()
        machine.map_on_node(1, REGION, num_pages=1)
        machine.write_word(REGION + 7, 31415)
        machine.load_hthread(0, 0, 0, "ld i5, i1\nhalt", registers={"i1": REGION + 7})
        machine.run_until(lambda m: m.register_full(0, 0, 0, "i5"), max_cycles=5000)
        assert machine.register_value(0, 0, 0, "i5") == 31415

    def test_remote_store(self):
        machine = two_node_machine()
        machine.map_on_node(1, REGION, num_pages=1)
        machine.load_hthread(0, 0, 0, "st i6, i1\nhalt",
                             registers={"i1": REGION + 9, "i6": 2718})
        machine.run_until_quiescent(max_cycles=5000)
        assert machine.read_word(REGION + 9) == 2718

    def test_local_ltlb_miss_handled_in_software(self):
        machine = two_node_machine()
        machine.map_on_node(0, REGION, num_pages=1, preload_ltlb=False)
        machine.write_word(REGION + 2, 55)
        machine.load_hthread(0, 0, 0, "ld i5, i1\nhalt", registers={"i1": REGION + 2})
        machine.run_until(lambda m: m.register_full(0, 0, 0, "i5"), max_cycles=5000)
        assert machine.register_value(0, 0, 0, "i5") == 55
        assert machine.nodes[0].ltlb.misses >= 1
        # No messages were needed: the page was local.
        assert machine.nodes[0].net.messages_sent == 0

    def test_remote_load_with_remote_ltlb_miss(self):
        machine = two_node_machine()
        machine.map_on_node(1, REGION, num_pages=1, preload_ltlb=False)
        machine.write_word(REGION, 777)
        machine.load_hthread(0, 0, 0, "ld i5, i1\nhalt", registers={"i1": REGION})
        machine.run_until(lambda m: m.register_full(0, 0, 0, "i5"), max_cycles=10000)
        assert machine.register_value(0, 0, 0, "i5") == 777
        assert machine.nodes[1].ltlb.misses >= 1

    def test_faulting_thread_continues_until_it_needs_the_data(self):
        """Asynchronous event handling: the thread that issued the remote
        load keeps issuing independent instructions and only blocks when it
        uses the loaded value (Section 3.3)."""
        machine = two_node_machine()
        machine.map_on_node(1, REGION, num_pages=1)
        machine.write_word(REGION, 5)
        machine.load_hthread(0, 0, 0, """
            ld i5, i1
            mov i2, #0
            add i2, i2, #1
            add i2, i2, #1
            add i2, i2, #1
            add i6, i5, #100
            halt
        """, registers={"i1": REGION})
        machine.run_until(
            lambda m: m.thread_halted(0, 0, 0) and m.register_full(0, 0, 0, "i6"),
            max_cycles=5000,
        )
        assert machine.register_value(0, 0, 0, "i2") == 3
        assert machine.register_value(0, 0, 0, "i6") == 105
        # The adds issued long before the remote value arrived.
        load_complete = machine.tracer.first("xregwr", reg="i5")
        assert load_complete is not None

    def test_remote_read_timeline_milestones(self):
        """Figure 9's milestones appear in order in the trace."""
        machine = two_node_machine()
        machine.map_on_node(1, REGION, num_pages=1)
        machine.write_word(REGION, 1)
        machine.load_hthread(0, 0, 0, "ld i5, i1\nhalt", registers={"i1": REGION})
        machine.run_until(lambda m: m.register_full(0, 0, 0, "i5"), max_cycles=5000)
        timeline = extract_remote_access_timeline(machine.tracer, "read")
        labels = timeline.labels()
        assert len(labels) >= 8
        cycles = [event.cycle for event in timeline.normalised().events]
        assert cycles == sorted(cycles)
        assert timeline.total_cycles > 20

    def test_remote_accesses_from_both_nodes(self):
        machine = two_node_machine()
        machine.map_on_node(0, REGION, num_pages=1)
        machine.map_on_node(1, REGION + 0x1000, num_pages=1)
        machine.load_hthread(0, 0, 0, "st i6, i1\nhalt",
                             registers={"i1": REGION + 0x1000, "i6": 10})
        machine.load_hthread(1, 0, 0, "st i6, i1\nhalt",
                             registers={"i1": REGION + 1, "i6": 20})
        machine.run_until_quiescent(max_cycles=10000)
        assert machine.read_word(REGION + 0x1000) == 10
        assert machine.read_word(REGION + 1) == 20


class TestCoherentSharedMemory:
    """Section 4.3: caching remote data in local DRAM with block-status bits."""

    def _machine(self, shape=(2, 1, 1)):
        config = MachineConfig.small(*shape)
        config.runtime.shared_memory_mode = "coherent"
        return MMachine(config)

    def test_remote_read_creates_local_copy(self):
        machine = self._machine()
        machine.map_on_node(1, REGION, num_pages=1)
        machine.write_word(REGION + 1, 99)
        machine.load_hthread(0, 0, 0, "ld i5, i1\nhalt", registers={"i1": REGION + 1})
        machine.run_until(lambda m: m.register_full(0, 0, 0, "i5"), max_cycles=20000)
        assert machine.register_value(0, 0, 0, "i5") == 99
        # The block now lives in node 0's DRAM in READ_ONLY state.
        status = machine.nodes[0].memory.get_block_status(REGION + 1)
        assert status == int(BlockStatus.READ_ONLY)
        assert machine.runtime.coherence.block_fetches == 1

    def test_second_read_hits_locally_without_messages(self):
        machine = self._machine()
        machine.map_on_node(1, REGION, num_pages=1)
        machine.write_word(REGION, 7)
        machine.load_hthread(0, 0, 0, "ld i5, i1\nld i6, i1, #1\nhalt",
                             registers={"i1": REGION})
        machine.run_until(
            lambda m: m.thread_halted(0, 0, 0) and m.register_full(0, 0, 0, "i6"),
            max_cycles=20000,
        )
        # Both words are in the same block: one fetch serves both loads.
        assert machine.runtime.coherence.block_fetches == 1

    def test_write_upgrade_and_dirty_recall(self):
        machine = self._machine()
        machine.map_on_node(1, REGION, num_pages=1)
        machine.write_word(REGION, 5)
        machine.load_hthread(0, 0, 0, """
            ld i5, i1
            add i5, i5, #10
            st i5, i1
            halt
        """, registers={"i1": REGION})
        machine.run_until_quiescent(max_cycles=30000)
        assert machine.nodes[0].memory.debug_read(REGION) == 15
        assert machine.runtime.coherence.write_upgrades == 1
        # The home node reads it back, recalling the dirty block.
        machine.load_hthread(1, 0, 0, "ld i5, i1\nhalt", registers={"i1": REGION})
        machine.run_until(lambda m: m.register_full(1, 0, 0, "i5"), max_cycles=30000)
        assert machine.register_value(1, 0, 0, "i5") == 15
        assert machine.runtime.coherence.dirty_writebacks == 1

    def test_read_sharing_among_three_nodes(self):
        machine = self._machine(shape=(4, 1, 1))
        machine.map_on_node(0, REGION, num_pages=1)
        machine.write_word(REGION + 4, 123)
        for node in (1, 2, 3):
            machine.load_hthread(node, 0, 0, "ld i5, i1\nhalt",
                                 registers={"i1": REGION + 4})
        machine.run_until(
            lambda m: all(m.register_full(node, 0, 0, "i5") for node in (1, 2, 3)),
            max_cycles=60000,
        )
        for node in (1, 2, 3):
            assert machine.register_value(node, 0, 0, "i5") == 123
        directory = machine.runtime.coherence.directories[0]
        from repro.memory.page_table import block_base

        entry = directory[block_base(REGION + 4)]
        assert {1, 2, 3}.issubset(entry.sharers)

    def test_writer_invalidates_reader_copy(self):
        machine = self._machine(shape=(4, 1, 1))
        machine.map_on_node(0, REGION, num_pages=1)
        machine.write_word(REGION, 1)
        # Node 1 reads (gets a READ_ONLY copy).
        machine.load_hthread(1, 0, 0, "ld i5, i1\nhalt", registers={"i1": REGION})
        machine.run_until(lambda m: m.register_full(1, 0, 0, "i5"), max_cycles=30000)
        # Node 2 writes: node 1's copy must be invalidated.
        machine.load_hthread(2, 0, 0, "st i6, i1\nhalt",
                             registers={"i1": REGION, "i6": 42})
        machine.run_until_quiescent(max_cycles=60000)
        assert machine.runtime.coherence.invalidations >= 1
        assert machine.nodes[1].memory.get_block_status(REGION) == int(BlockStatus.INVALID)
        assert machine.nodes[2].memory.debug_read(REGION) == 42
        # Node 1 re-reads and sees the new value (fetched again via node 0).
        machine.load_hthread(1, 1, 0, "ld i7, i1\nhalt", registers={"i1": REGION})
        machine.run_until(lambda m: m.register_full(1, 1, 0, "i7"), max_cycles=60000)
        assert machine.register_value(1, 1, 0, "i7") == 42
