"""Integration tests for the Figure 5 stencil kernels and for guarded-pointer
protection."""

import pytest

from repro import (
    GuardedPointer,
    MMachine,
    MachineConfig,
    PointerPermission,
)
from repro.cluster.hthread import ThreadState
from repro.workloads.stencil import make_stencil_workload

HEAP = 0x10000


def run_stencil(kind, n_hthreads):
    machine = MMachine(MachineConfig.single_node())
    machine.map_on_node(0, HEAP, num_pages=16)
    workload = make_stencil_workload(kind=kind, n_hthreads=n_hthreads)
    workload.setup(machine)
    machine.run_until_user_done(max_cycles=30000)
    return machine, workload


class TestStencilKernels:
    @pytest.mark.parametrize("kind, n_hthreads", [
        ("7pt", 1), ("7pt", 2), ("7pt", 4),
        ("27pt", 1), ("27pt", 2), ("27pt", 4),
    ])
    def test_numerical_result(self, kind, n_hthreads):
        machine, workload = run_stencil(kind, n_hthreads)
        assert workload.verify(machine)

    def test_figure5_seven_point_static_depths(self):
        """Figure 5: 12 instructions on one H-Thread vs 8 on two."""
        single = make_stencil_workload("7pt", 1)
        dual = make_stencil_workload("7pt", 2)
        assert single.max_static_depth == 12
        assert dual.max_static_depth == 8
        assert dual.static_depths[0] == 7       # H-Thread 0 of Figure 5(b)
        assert dual.static_depths[1] == 8       # H-Thread 1 of Figure 5(b)

    def test_27_point_depth_shrinks_with_hthreads(self):
        """Section 3.1: 'On a larger 27-point stencil, the depth is reduced
        from 36 to 17 when run on 4 H-Threads' -- our schedules are a little
        tighter in absolute terms but show the same ~2-2.5x reduction."""
        one = make_stencil_workload("27pt", 1).max_static_depth
        four = make_stencil_workload("27pt", 4).max_static_depth
        assert one >= 30
        assert four <= 17
        assert one / four >= 2.0

    def test_dynamic_cycles_improve_with_hthreads_for_27pt(self):
        machine1, _ = run_stencil("27pt", 1)
        machine4, _ = run_stencil("27pt", 4)
        assert machine4.cycle < machine1.cycle

    def test_workers_use_inter_cluster_transfers(self):
        machine, workload = run_stencil("7pt", 4)
        transfers = [event for event in machine.tracer.filter("reg_write", node=0)
                     if event.info.get("origin", "").startswith("c")]
        assert len(transfers) == 3     # three partials shipped to the storer

    def test_operations_distributed_across_clusters(self):
        machine, _ = run_stencil("7pt", 4)
        for cluster in range(4):
            assert machine.nodes[0].clusters[cluster].instructions_issued > 0


class TestGuardedPointerProtection:
    def _protected_machine(self):
        config = MachineConfig.single_node()
        config.runtime.protection_enabled = True
        machine = MMachine(config)
        machine.map_on_node(0, HEAP, num_pages=1)
        return machine

    def test_access_through_pointer_allowed(self):
        machine = self._protected_machine()
        machine.write_word(HEAP + 3, 17)
        pointer = GuardedPointer(HEAP, 9, PointerPermission.rw())
        machine.load_hthread(0, 0, 0, "ld i5, i1, #3\nhalt", registers={"i1": pointer})
        machine.run_until_user_done(max_cycles=2000)
        assert machine.register_value(0, 0, 0, "i5") == 17

    def test_plain_integer_address_faults_when_protected(self):
        machine = self._protected_machine()
        machine.load_hthread(0, 0, 0, "ld i5, i1\nhalt", registers={"i1": HEAP})
        machine.run_until_quiescent(max_cycles=2000)
        assert machine.nodes[0].context(0, 0).state is ThreadState.FAULTED

    def test_write_through_read_only_pointer_faults(self):
        machine = self._protected_machine()
        pointer = GuardedPointer(HEAP, 9, PointerPermission.READ)
        machine.load_hthread(0, 0, 0, "st i6, i1\nhalt",
                             registers={"i1": pointer, "i6": 1})
        machine.run_until_quiescent(max_cycles=2000)
        assert machine.nodes[0].context(0, 0).state is ThreadState.FAULTED

    def test_access_outside_segment_faults(self):
        machine = self._protected_machine()
        pointer = GuardedPointer(HEAP, 3, PointerPermission.rw())   # 8-word segment
        machine.load_hthread(0, 0, 0, "ld i5, i1, #64\nhalt", registers={"i1": pointer})
        machine.run_until_quiescent(max_cycles=2000)
        assert machine.nodes[0].context(0, 0).state is ThreadState.FAULTED

    def test_lea_within_segment_then_load(self):
        machine = self._protected_machine()
        machine.write_word(HEAP + 5, 88)
        pointer = GuardedPointer(HEAP, 9, PointerPermission.rw())
        machine.load_hthread(0, 0, 0, "lea i2, i1, #5\nld i5, i2\nhalt",
                             registers={"i1": pointer})
        machine.run_until_user_done(max_cycles=2000)
        assert machine.register_value(0, 0, 0, "i5") == 88

    def test_user_cannot_forge_pointers(self):
        machine = self._protected_machine()
        machine.load_hthread(0, 0, 0, "setptr i1, i2, #9, #7\nhalt",
                             registers={"i2": HEAP})
        machine.run_until_quiescent(max_cycles=2000)
        assert machine.nodes[0].context(0, 0).state is ThreadState.FAULTED

    def test_protection_off_allows_integer_addresses(self):
        machine = MMachine(MachineConfig.single_node())
        machine.map_on_node(0, HEAP, num_pages=1)
        machine.write_word(HEAP, 3)
        machine.load_hthread(0, 0, 0, "ld i5, i1\nhalt", registers={"i1": HEAP})
        machine.run_until_user_done(max_cycles=2000)
        assert machine.register_value(0, 0, 0, "i5") == 3
