"""Bit-exact snapshot/restore equivalence (the tentpole guarantee).

For every workload class of the ``scenario-matrix`` sweep spec (stencil,
ping-pong, flood, remote-memory, coherence) on a 4x4 mesh, under both the
``event`` and ``naive`` kernels:

    run to cycle C -> snapshot -> restore in a FRESH PROCESS -> run to end

must equal the uninterrupted run's final cycle count, complete
``MachineStats`` (summary and per-node dicts) and trace -- event for event,
including message and request ids, which is why the snapshot carries the id
allocators.

All snapshots are written first, then a single helper process restores and
finishes every one of them (one interpreter start instead of ten).
"""

import json
import os
import subprocess
import sys

import pytest

from repro import MMachine, MachineConfig
from repro.workloads.stencil import make_stencil_workload
from repro.workloads.synthetic import remote_store_sender_program

HEAP = 0x10000
REGION = 0x40000
MESH = (4, 4, 1)
MAX_CYCLES = 400_000

SRC_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "src")

KERNELS = ["event", "naive"]
WORKLOADS = ["stencil", "ping-pong", "flood", "remote-memory", "coherence"]


def _machine(kernel: str, shared_memory_mode: str = "remote") -> MMachine:
    # Request/message id allocators are machine-owned, so the reference run,
    # the snapshotted run and the fresh-process resume all number records
    # identically without any global resets.
    config = MachineConfig.small(*MESH)
    config.sim.kernel = kernel
    config.runtime.shared_memory_mode = shared_memory_mode
    return MMachine(config)


def _build(workload: str, kernel: str) -> MMachine:
    """Build and load one scenario-matrix workload (small parameters)."""
    if workload == "stencil":
        machine = _machine(kernel)
        machine.map_on_node(0, HEAP, num_pages=16)
        make_stencil_workload(kind="7pt", n_hthreads=2).setup(machine)
        return machine
    if workload == "ping-pong":
        machine = _machine(kernel)
        far = machine.num_nodes - 1
        rounds = 4
        machine.map_on_node(far, REGION, num_pages=1)
        machine.map_on_node(0, REGION + 0x1000, num_pages=1)
        dip = machine.runtime.dip("remote_store")
        ping, pong = REGION + 8, REGION + 0x1000 + 8
        machine.write_word(ping, 0)
        machine.write_word(pong, 0)
        machine.load_hthread(
            0, 0, 0,
            f"""
            mov i3, #0
    loop:   add i3, i3, #1
            mov m0, i3
            send i1, #{dip}, #1
    wait:   ld i4, i2
            lt i5, i4, i3
            br i5, wait
            lt i6, i3, #{rounds}
            br i6, loop
            halt
            """,
            registers={"i1": ping, "i2": pong},
        )
        machine.load_hthread(
            far, 0, 0,
            f"""
            mov i3, #0
    loop:   add i3, i3, #1
    wait:   ld i4, i2
            lt i5, i4, i3
            br i5, wait
            mov m0, i3
            send i1, #{dip}, #1
            lt i6, i3, #{rounds}
            br i6, loop
            halt
            """,
            registers={"i1": pong, "i2": ping},
        )
        return machine
    if workload == "flood":
        machine = _machine(kernel)
        far = machine.num_nodes - 1
        machine.map_on_node(far, REGION, num_pages=1)
        dip = machine.runtime.dip("remote_store")
        machine.load_hthread(0, 0, 0, remote_store_sender_program(REGION, dip, 8))
        return machine
    if workload in ("remote-memory", "coherence"):
        mode = "remote" if workload == "remote-memory" else "coherent"
        machine = _machine(kernel, shared_memory_mode=mode)
        far = machine.num_nodes - 1
        repeats = 6
        machine.map_on_node(far, REGION, num_pages=1)
        machine.write_word(REGION, 3)
        machine.load_hthread(
            0, 0, 0,
            f"""
            mov i3, #0
            mov i5, #0
    loop:   ld i4, i1
            add i5, i5, i4
            add i3, i3, #1
            lt i6, i3, #{repeats}
            br i6, loop
            halt
            """,
            registers={"i1": REGION},
        )
        return machine
    raise AssertionError(f"unknown workload {workload!r}")


def _report(machine: MMachine) -> dict:
    stats = machine.stats()
    report = {
        "cycle": machine.cycle,
        "summary": stats.summary(),
        "node_stats": stats.node_stats,
        "trace": [str(event) for event in machine.tracer.events],
    }
    # Normalise through JSON (int dict keys become strings, tuples become
    # lists) so reports compare equal across the process boundary.
    return json.loads(json.dumps(report))


_RESUME_SCRIPT = """\
import json, sys
from repro.core.machine import MMachine

for line in sys.stdin:
    job = json.loads(line)
    machine = MMachine.from_snapshot(job["path"])
    machine.run_until_user_done(max_cycles=job["max_cycles"])
    stats = machine.stats()
    print(json.dumps({
        "key": job["key"],
        "cycle": machine.cycle,
        "summary": stats.summary(),
        "node_stats": stats.node_stats,
        "trace": [str(event) for event in machine.tracer.events],
    }))
"""


@pytest.fixture(scope="module")
def equivalence_results(tmp_path_factory):
    """References, snapshots, and one fresh process that finishes them all."""
    tmp_path = tmp_path_factory.mktemp("snapshots")
    references = {}
    jobs = []
    for workload in WORKLOADS:
        for kernel in KERNELS:
            key = f"{workload}/{kernel}"
            reference = _build(workload, kernel)
            reference.run_until_user_done(max_cycles=MAX_CYCLES)
            references[key] = _report(reference)

            snapshot_cycle = max(50, reference.cycle // 3)
            machine = _build(workload, kernel)
            machine.run(snapshot_cycle)
            assert machine.cycle == snapshot_cycle
            path = str(tmp_path / f"{workload}-{kernel}.json")
            machine.save_snapshot(path)
            jobs.append({"key": key, "path": path, "max_cycles": MAX_CYCLES})

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", _RESUME_SCRIPT],
        input="\n".join(json.dumps(job) for job in jobs),
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr
    resumed = {}
    for line in completed.stdout.splitlines():
        result = json.loads(line)
        resumed[result.pop("key")] = result
    return references, resumed


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("workload", WORKLOADS)
def test_fresh_process_resume_is_bit_exact(equivalence_results, workload, kernel):
    references, resumed = equivalence_results
    key = f"{workload}/{kernel}"
    reference, restored = references[key], resumed[key]
    assert restored["cycle"] == reference["cycle"]
    assert restored["summary"] == reference["summary"]
    assert restored["node_stats"] == reference["node_stats"]
    assert restored["trace"] == reference["trace"]


def test_event_and_naive_snapshots_agree():
    """Cross-check: the snapshotted state itself (not just the continuation)
    is kernel-independent -- both clock drivers freeze identical machines."""
    docs = {}
    for kernel in KERNELS:
        machine = _build("ping-pong", kernel)
        machine.run(200)
        document = machine.snapshot_document()
        # The embedded config legitimately differs (sim.kernel); state must not.
        docs[kernel] = document["machine"]
    assert docs["event"] == docs["naive"]


def test_in_process_round_trip_matches_continued_run():
    """Snapshot + restore in the same process equals simply continuing the
    original machine (the original is not perturbed by being snapshotted)."""
    machine = _build("remote-memory", "event")
    machine.run(150)
    document = json.loads(json.dumps(machine.snapshot_document()))
    # Id allocators are machine-owned, so restoring must not perturb the
    # original: run both machines interleaved and compare at the end.
    restored = MMachine.from_snapshot(document)
    machine.run_until_user_done(max_cycles=MAX_CYCLES)
    restored.run_until_user_done(max_cycles=MAX_CYCLES)
    assert _report(restored) == _report(machine)
