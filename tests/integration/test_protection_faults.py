"""Mid-run guarded-pointer violations must fault cleanly on every back end.

The existing protection tests fault on the very first instruction under the
default event kernel only.  This file drives the full grid — event vs naive
kernel x compiled dispatch on/off — with violations raised *mid-run* (after
a warm-up loop has issued real work, so the compiled-dispatch plan cache is
hot) and checks the clean-fault contract everywhere: the violating context
parks in FAULTED, an ``exception`` trace event is recorded, innocent
threads keep running to completion, and the machine winds down to
quiescence instead of wedging.
"""

import pytest

from repro import GuardedPointer, MMachine, MachineConfig, PointerPermission
from repro.cluster.hthread import ThreadState
from repro.fuzz.generator import VIOLATION_MODES, ThreadSpec, render_thread

HEAP = 0x10000

GRID = [
    ("event", True),
    ("event", False),
    ("naive", True),
    ("naive", False),
]

#: A warm-up loop that does real guarded-pointer work before violating:
#: the violation happens mid-run, not on the first fetched instruction.
MID_RUN_VIOLATION = """
        mov i4, #0
        mov i5, #0
loop:   ld i3, i1, #2
        add i5, i5, i3
        add i4, i4, #1
        lt i8, i4, #6
        br i8, loop
        ld i6, i2
        halt
"""

CLEAN_NEIGHBOUR = """
        mov i4, #0
        mov i5, #0
loop:   ld i3, i1, #1
        add i5, i5, i3
        add i4, i4, #1
        lt i8, i4, #10
        br i8, loop
        halt
"""


def protected_machine(kernel, compile_dispatch):
    config = MachineConfig.single_node()
    config.runtime.protection_enabled = True
    config.sim.kernel = kernel
    config.sim.compile_dispatch = compile_dispatch
    machine = MMachine(config)
    machine.map_on_node(0, HEAP, num_pages=1)
    machine.write_word(HEAP + 1, 5)
    machine.write_word(HEAP + 2, 9)
    return machine


def exception_events(machine):
    return [event for event in machine.tracer.events if event.category == "exception"]


class TestMidRunViolationGrid:
    @pytest.mark.parametrize("kernel, compile_dispatch", GRID)
    def test_mid_run_fault_is_clean(self, kernel, compile_dispatch):
        machine = protected_machine(kernel, compile_dispatch)
        rw = GuardedPointer(HEAP, 9, PointerPermission.rw())
        # i2 holds a plain integer: the final ld faults under protection.
        machine.load_hthread(
            0, 0, 0, MID_RUN_VIOLATION, registers={"i1": rw, "i2": HEAP}
        )
        machine.load_hthread(0, 0, 1, CLEAN_NEIGHBOUR, registers={"i1": rw})
        cycles = machine.run_until_quiescent(max_cycles=5000)
        assert cycles < 5000, "machine wedged instead of going quiescent"
        violator = machine.nodes[0].context(0, 0)
        neighbour = machine.nodes[0].context(0, 1)
        assert violator.state is ThreadState.FAULTED
        # The warm-up loop really ran before the fault.
        assert violator.instructions_issued > 20
        assert neighbour.state is ThreadState.HALTED
        assert machine.register_value(0, 0, 1, "i5") == 50
        assert len(exception_events(machine)) == 1

    @pytest.mark.parametrize("kernel, compile_dispatch", GRID)
    @pytest.mark.parametrize("mode", VIOLATION_MODES)
    def test_every_violation_mode_faults(self, kernel, compile_dispatch, mode):
        machine = protected_machine(kernel, compile_dispatch)
        thread = ThreadSpec(
            node=0,
            slot=0,
            cluster=0,
            kind="violator",
            params={"base": HEAP, "mode": mode},
        )
        source, registers = render_thread(thread, remote_store_dip=0)
        machine.load_hthread(0, 0, 0, source, registers=registers)
        cycles = machine.run_until_quiescent(max_cycles=5000)
        assert cycles < 5000
        assert machine.nodes[0].context(0, 0).state is ThreadState.FAULTED
        assert len(exception_events(machine)) == 1

    @pytest.mark.parametrize("kernel, compile_dispatch", GRID)
    def test_faulted_grid_points_agree(self, kernel, compile_dispatch):
        """Every grid point reports the identical fault cycle and trace."""
        machine = protected_machine(kernel, compile_dispatch)
        rw = GuardedPointer(HEAP, 9, PointerPermission.rw())
        machine.load_hthread(
            0, 0, 0, MID_RUN_VIOLATION, registers={"i1": rw, "i2": HEAP}
        )
        machine.run_until_quiescent(max_cycles=5000)
        reference = protected_machine("event", True)
        reference.load_hthread(
            0, 0, 0, MID_RUN_VIOLATION, registers={"i1": rw, "i2": HEAP}
        )
        reference.run_until_quiescent(max_cycles=5000)
        assert machine.cycle == reference.cycle
        assert [str(e) for e in machine.tracer.events] == [
            str(e) for e in reference.tracer.events
        ]


class TestFaultedMachineKeepsWorking:
    @pytest.mark.parametrize("kernel, compile_dispatch", GRID)
    def test_new_work_after_fault(self, kernel, compile_dispatch):
        """A fault must not wedge the node: freshly loaded work still runs."""
        machine = protected_machine(kernel, compile_dispatch)
        machine.load_hthread(0, 0, 0, "ld i5, i1\nhalt", registers={"i1": HEAP})
        machine.run_until_quiescent(max_cycles=2000)
        assert machine.nodes[0].context(0, 0).state is ThreadState.FAULTED
        rw = GuardedPointer(HEAP, 9, PointerPermission.rw())
        machine.load_hthread(0, 1, 0, "ld i5, i1, #1\nhalt", registers={"i1": rw})
        machine.run_until_quiescent(max_cycles=2000)
        assert machine.nodes[0].context(1, 0).state is ThreadState.HALTED
        assert machine.register_value(0, 1, 0, "i5") == 5
