"""The fault/multiprogramming family is sweepable with deterministic run ids.

Mirrors ``test_sweep_paper_figures.py`` for the new workloads: they appear
in the ``scenario-matrix`` builtin spec with stable run ids, and a sweep run
over the family (worker processes, via the CLI) reports byte-identical
metrics to fresh in-process factory calls — sweep-vs-pytest cycle identity.
The full scenario matrix (8x8 naive-kernel points) is minutes of host time,
so the executed sweep here covers the family on its smallest meshes via
``--spec-file`` while the expansion checks run on the real builtin spec.
"""

import json

import pytest

from repro.api import get_workload
from repro.cli import main
from repro.sweep import get_spec, validate_results
from repro.sweep.runner import RESULTS_FILENAME
from repro.sweep.spec import RunSpec

NEW_WORKLOADS = ("multitenant-timeshare", "protection-storm", "secded-soak", "nack-flood")

#: The family at its smallest sweep operating points, both kernels.
MINI_SPEC = {
    "name": "fault-family-mini",
    "description": "scenario-matrix fault family, smallest meshes",
    "groups": [
        {
            "workload": "multitenant-timeshare",
            "params": {"seed": 0, "jobs": 8},
            "axes": {"mesh": [[2, 2, 1]], "kernel": ["event", "naive"]},
        },
        {
            "workload": "protection-storm",
            "params": {"violators": 9},
            "axes": {"mesh": [[2, 2, 1]], "kernel": ["event", "naive"]},
        },
        {
            "workload": "secded-soak",
            "params": {"words": 32, "single_flips": 8, "double_flips": 4},
            "axes": {"kernel": ["event", "naive"]},
        },
        {
            "workload": "nack-flood",
            "params": {"senders": 3, "messages_each": 12},
            "axes": {"mesh": [[2, 2, 1]], "kernel": ["event", "naive"]},
        },
    ],
}


class TestScenarioMatrixSpec:
    def test_family_is_in_the_builtin_spec(self):
        runs = get_spec("scenario-matrix").expand()
        by_workload = {}
        for run in runs:
            by_workload.setdefault(run.workload, []).append(run)
        for name in NEW_WORKLOADS:
            assert by_workload.get(name), f"scenario-matrix is missing {name}"
        # Both kernels are swept for every family member.
        for name in NEW_WORKLOADS:
            kernels = {run.params["kernel"] for run in by_workload[name]}
            assert kernels == {"event", "naive"}

    def test_run_ids_are_deterministic(self):
        first = [run.run_id for run in get_spec("scenario-matrix").expand()]
        second = [run.run_id for run in get_spec("scenario-matrix").expand()]
        assert first == second
        assert len(first) == len(set(first)), "duplicate run ids"

    def test_expansion_matches_runspec_identity(self):
        for run in get_spec("scenario-matrix").expand():
            if run.workload in NEW_WORKLOADS:
                rebuilt = RunSpec(workload=run.workload, params=dict(run.params))
                assert rebuilt.run_id == run.run_id


@pytest.fixture(scope="module")
def sweep_results(tmp_path_factory):
    results_dir = tmp_path_factory.mktemp("fault-family")
    spec_path = results_dir / "mini-spec.json"
    spec_path.write_text(json.dumps(MINI_SPEC))
    exit_code = main(
        ["sweep", "--spec-file", str(spec_path), "--jobs", "4",
         "--results-dir", str(results_dir)]
    )
    document = json.loads((results_dir / RESULTS_FILENAME).read_text())
    return {"exit_code": exit_code, "document": document}


def test_family_sweep_completes(sweep_results):
    assert sweep_results["exit_code"] == 0
    document = sweep_results["document"]
    assert validate_results(document) == []
    assert document["counts"]["failed"] == 0
    assert document["counts"]["total"] == 8


def test_family_sweep_matches_in_process_runs(sweep_results):
    by_id = {record["run_id"]: record for record in sweep_results["document"]["runs"]}
    for group in MINI_SPEC["groups"]:
        for kernel in group["axes"]["kernel"]:
            params = dict(group["params"])
            params["kernel"] = kernel
            for mesh in group["axes"].get("mesh", [None]):
                if mesh is not None:
                    params["mesh"] = mesh
                run_id = RunSpec(workload=group["workload"], params=params).run_id
                assert run_id in by_id, (group["workload"], params)
                sweep_metrics = by_id[run_id]["metrics"]
                bench_metrics = get_workload(group["workload"]).call(params)
                assert sweep_metrics["cycles"] == bench_metrics["cycles"]
                assert sweep_metrics == bench_metrics, (group["workload"], params)
                assert sweep_metrics["verified"] is True
