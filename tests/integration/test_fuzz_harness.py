"""Integration tests for the differential fuzzing harness (`repro.fuzz`).

Three contracts: (1) pinned seed ranges pass the full differential grid —
event vs naive kernel x compiled dispatch on/off plus a mid-run snapshot
round-trip; (2) a deliberately injected "kernel bug" (the mutation seam) is
*caught* — the harness is not vacuously green; (3) failing programs shrink
to a minimal reproducer and round-trip through the repro-file format, and
the ``repro fuzz`` CLI drives all of it.
"""

import json

import pytest

from repro.cli import main
from repro.fuzz import (
    GeneratorKnobs,
    check_program,
    dump_repro,
    first_difference,
    fuzz_many,
    generate_program,
    load_repro,
    shrink_program,
)


class TestDifferentialGrid:
    @pytest.mark.parametrize("seed", range(8))
    def test_pinned_seeds_pass(self, seed):
        outcome = check_program(generate_program(seed))
        assert outcome.ok, outcome.failures
        assert outcome.cycles > 0

    def test_fault_heavy_knobs_pass(self):
        knobs = GeneratorKnobs(
            mesh=(2, 2, 1), max_threads=8, fault_density=0.6, nack_storm=True
        )
        for seed in range(3):
            outcome = check_program(generate_program(seed, knobs))
            assert outcome.ok, outcome.failures


class TestMutationCheck:
    """A tampered observation on any grid point must be reported."""

    def test_stat_mutation_caught(self):
        def mutate(machine, kernel, compile_dispatch):
            if kernel == "naive" and compile_dispatch:
                machine.nodes[0].clusters[0].contexts[0].instructions_issued += 1

        outcome = check_program(generate_program(0), _mutate=mutate)
        assert not outcome.ok
        stages = [failure["stage"] for failure in outcome.failures]
        assert stages == ["differential[naive,dispatch=True]"]

    def test_trace_mutation_caught(self):
        def mutate(machine, kernel, compile_dispatch):
            if kernel == "event" and not compile_dispatch:
                machine.tracer.events.pop()

        outcome = check_program(generate_program(2), _mutate=mutate)
        assert not outcome.ok
        assert outcome.failures[0]["stage"] == "differential[event,dispatch=False]"
        assert "trace" in outcome.failures[0]["detail"]

    def test_snapshot_mutation_caught(self):
        def mutate(machine, kernel, compile_dispatch):
            if kernel == "snapshot":
                machine.nodes[0].clusters[0].contexts[0].stall_cycles += 1

        outcome = check_program(generate_program(1), _mutate=mutate)
        assert not outcome.ok
        assert outcome.failures[0]["stage"].startswith("snapshot[")

    def test_every_naive_grid_point_is_actually_run(self):
        seen = []

        def mutate(machine, kernel, compile_dispatch):
            seen.append((kernel, compile_dispatch))

        check_program(generate_program(0), _mutate=mutate)
        assert ("event", True) in seen
        assert ("event", False) in seen
        assert ("naive", True) in seen
        assert ("naive", False) in seen
        assert ("snapshot", True) in seen


class TestFirstDifference:
    def test_equal_is_none(self):
        assert first_difference({"a": [1, {"b": 2}]}, {"a": [1, {"b": 2}]}) is None

    def test_reports_deep_path(self):
        diff = first_difference({"a": [1, {"b": 2}]}, {"a": [1, {"b": 3}]})
        assert diff == "$.a[1].b: 2 != 3"

    def test_reports_missing_and_extra_keys(self):
        assert "missing" in first_difference({"a": 1}, {})
        assert "unexpected" in first_difference({}, {"a": 1})

    def test_reports_length_and_type(self):
        assert "length" in first_difference([1], [1, 2])
        assert "type" in first_difference(1, "1")


class TestShrinkAndRepro:
    def test_shrinker_minimises(self):
        program = generate_program(2)
        assert len(program.threads) > 1

        def fails(candidate):
            return any(thread.kind == "secded-read" for thread in candidate.threads)

        shrunk = shrink_program(program, is_failing=fails)
        assert len(shrunk.threads) == 1
        assert shrunk.threads[0].kind == "secded-read"
        assert not shrunk.single_flips

    def test_shrinker_keeps_non_failing_program(self):
        program = generate_program(0)
        shrunk = shrink_program(program, is_failing=lambda candidate: False)
        assert shrunk.to_dict() == program.to_dict()

    def test_shrinker_halves_iterations(self):
        program = generate_program(0)
        compute = [t for t in program.threads if t.kind in ("compute", "local-memory")]
        if not compute:
            pytest.skip("seed 0 drew no iterating threads")
        shrunk = shrink_program(program, is_failing=lambda candidate: True)
        for thread in shrunk.threads:
            if "iterations" in thread.params:
                assert thread.params["iterations"] == 1

    def test_repro_file_round_trip(self, tmp_path):
        program = generate_program(3)
        outcome = check_program(program)
        path = dump_repro(program, outcome, str(tmp_path / "repro.json"))
        loaded = load_repro(path)
        assert loaded.to_dict() == program.to_dict()
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["fuzz_repro"] == 1
        assert payload["failure"]["seed"] == 3

    def test_load_repro_prefers_shrunk(self, tmp_path):
        program = generate_program(2)
        shrunk = shrink_program(
            program,
            is_failing=lambda c: any(t.kind == "secded-read" for t in c.threads),
        )
        path = dump_repro(
            program, check_program(program), str(tmp_path / "repro.json"), shrunk=shrunk
        )
        assert load_repro(path).to_dict() == shrunk.to_dict()

    def test_load_repro_rejects_garbage(self, tmp_path):
        path = tmp_path / "nonsense.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_repro(str(path))


class TestCampaign:
    def test_fuzz_many_summary(self):
        lines = []
        summary = fuzz_many(seed=0, runs=3, log=lines.append)
        assert summary["ok"] is True
        assert summary["passed"] == 3
        assert summary["failed"] == []
        assert len(lines) == 3

    def test_failures_are_dumped(self, tmp_path, monkeypatch):
        import repro.fuzz.harness as harness_module

        real_check = harness_module.check_program

        def sabotaged(program, _mutate=None):
            def mutate(machine, kernel, compile_dispatch):
                if kernel == "naive":
                    machine.nodes[0].clusters[0].contexts[0].instructions_issued += 1

            return real_check(program, _mutate=mutate)

        monkeypatch.setattr(harness_module, "check_program", sabotaged)
        summary = harness_module.fuzz_many(seed=0, runs=2, repro_dir=str(tmp_path))
        assert summary["ok"] is False
        assert len(summary["failed"]) == 2
        for entry in summary["failed"]:
            assert entry["repro_file"]
            loaded = load_repro(entry["repro_file"])
            # The real harness passes the dumped program: the bug was in the
            # sabotaged kernel, not the generated program.
            assert real_check(loaded).ok


class TestCli:
    def test_fuzz_cli_passes(self, capsys):
        assert main(["fuzz", "--seed", "0", "--runs", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["passed"] == 2

    def test_fuzz_cli_knobs(self, capsys):
        code = main(
            ["fuzz", "--runs", "1", "--knob", "mesh=[1,1,1]", "--knob", "max_threads=2"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["knobs"]["mesh"] == [1, 1, 1]
        assert payload["knobs"]["max_threads"] == 2

    def test_fuzz_cli_bad_knob(self, capsys):
        assert main(["fuzz", "--runs", "1", "--knob", "nonsense=1"]) == 2
        assert "bad --knob" in capsys.readouterr().err

    def test_fuzz_cli_bad_runs(self, capsys):
        assert main(["fuzz", "--runs", "0"]) == 2

    def test_fuzz_cli_replay(self, tmp_path, capsys):
        program = generate_program(1)
        path = dump_repro(program, check_program(program), str(tmp_path / "r.json"))
        assert main(["fuzz", "--replay", path]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["seed"] == 1

    def test_fuzz_cli_replay_missing_file(self, capsys):
        assert main(["fuzz", "--replay", "/nonexistent/repro.json"]) == 2
        assert "cannot load" in capsys.readouterr().err
