"""Differential tests: compiled dispatch plans vs the interpreted issue path.

``MachineConfig.sim.compile_dispatch`` selects between the precompiled
per-instruction dispatch plans (:mod:`repro.cluster.dispatch`, the default)
and the original interpreted issue/execute path.  Compilation is a pure
host-side optimisation: it must be invisible to every observer of the
architecture -- identical final cycle counts, registers, memory, statistics
(including the exact per-reason stall strings the issue stage accrues every
cycle) and the full event trace.

Every scenario below runs one paper-figure workload twice through the typed
experiment API, once per dispatch mode, and compares the workload metrics,
the machine statistics and the complete trace event-by-event.  This is the
stress-test counterpart of ``tests/integration/test_kernel_equivalence.py``
(which plays the same game for the event kernel vs the naive loop).
"""

import pytest

from repro.api import ExperimentBuilder

#: Scenario matrix: one workload per major machine subsystem the dispatch
#: compiler touches -- register stencils (pure compute), message passing
#: (SEND/queue operands), flooding with NACK/retransmit (event handlers
#: resident on queue reads every cycle), transparent remote memory (probe
#: faults + handler dispatch) and coherent caching (GCC registers, native
#: handler busy charges).
SCENARIOS = (
    ("stencil", {"kind": "7pt", "n_hthreads": 2}),
    ("ping-pong", {"rounds": 8}),
    ("flood", {"messages": 16}),
    ("remote-memory", {"mode": "remote", "repeats": 12}),
    ("coherence", {"repeats": 12}),
)


def _run(name, params, compile_dispatch):
    """Run *name* once with dispatch compilation on or off; return the
    RunResult and every machine the workload constructed."""
    machines = []
    result = (
        ExperimentBuilder()
        .workload(name, **params)
        .override("sim.compile_dispatch", compile_dispatch)
        .probe(machines.append)
        .build()
        .run()
    )
    assert result.ok, f"{name} failed with compile_dispatch={compile_dispatch}"
    assert machines, "workload constructed no machine"
    return result, machines


def _compare_machines(compiled, interpreted) -> None:
    """Assert that two finished machines are observably identical."""
    assert compiled.cycle == interpreted.cycle, "final cycle counts differ"

    compiled_stats = compiled.stats()
    interpreted_stats = interpreted.stats()
    for row_compiled, row_interpreted in zip(
        compiled_stats.node_stats, interpreted_stats.node_stats
    ):
        assert row_compiled == row_interpreted, (
            f"node {row_interpreted['node_id']} stats differ"
        )

    # Per-thread microarchitectural state, including the per-reason stall
    # histogram -- compiled stall reasons are precomputed strings and must
    # match the interpreted path's f-strings byte for byte.
    for node_compiled, node_interpreted in zip(compiled.nodes, interpreted.nodes):
        for cl_compiled, cl_interpreted in zip(
            node_compiled.clusters, node_interpreted.clusters
        ):
            assert cl_compiled.icache.fetches == cl_interpreted.icache.fetches
            for ctx_compiled, ctx_interpreted in zip(
                cl_compiled.contexts, cl_interpreted.contexts
            ):
                assert ctx_compiled.state is ctx_interpreted.state
                assert ctx_compiled.pc == ctx_interpreted.pc
                assert (ctx_compiled.instructions_issued
                        == ctx_interpreted.instructions_issued)
                assert ctx_compiled.stall_cycles == ctx_interpreted.stall_cycles
                assert (dict(ctx_compiled.stall_reasons)
                        == dict(ctx_interpreted.stall_reasons))

    # The full event trace: same events, same order, same payloads.
    assert len(compiled.tracer.events) == len(interpreted.tracer.events), (
        "trace lengths differ"
    )
    for event_compiled, event_interpreted in zip(
        compiled.tracer.events, interpreted.tracer.events
    ):
        assert event_compiled == event_interpreted


@pytest.mark.parametrize(
    "name, params", SCENARIOS, ids=[name for name, _ in SCENARIOS]
)
def test_dispatch_differential(name, params):
    on_result, on_machines = _run(name, params, True)
    off_result, off_machines = _run(name, params, False)

    assert on_result.metrics == off_result.metrics, (
        f"{name}: dispatch compilation changed the workload metrics"
    )
    assert len(on_machines) == len(off_machines)
    for compiled, interpreted in zip(on_machines, off_machines):
        _compare_machines(compiled, interpreted)


def test_compiled_path_actually_engaged():
    """Guard against the differential test silently comparing the
    interpreted path against itself: with compilation on, the machine's
    clusters hold non-empty dispatch-plan caches after a run."""
    _, machines = _run("stencil", {"kind": "7pt", "n_hthreads": 2}, True)
    plans = [
        plan
        for machine in machines
        for node in machine.nodes
        for cluster in node.clusters
        for slot_plans in cluster._plan_cache
        if slot_plans
        for plan in slot_plans
        if plan is not None
    ]
    assert plans, "no compiled dispatch plans found on any cluster"

    _, machines = _run("stencil", {"kind": "7pt", "n_hthreads": 2}, False)
    for machine in machines:
        for node in machine.nodes:
            for cluster in node.clusters:
                assert all(
                    not slot_plans for slot_plans in cluster._plan_cache
                ), "interpreted run unexpectedly compiled dispatch plans"
