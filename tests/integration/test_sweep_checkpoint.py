"""Checkpointed sweeps: interrupted runs resume mid-run, not from cycle 0."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.snapshot.checkpoint import SnapshotTaken, checkpoint_context
from repro.sweep.runner import SweepRunner
from repro.sweep.spec import AxesGroup, RunSpec, SweepSpec
from repro.api import get_workload

SRC_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "src")

PARAMS = {"rounds": 12}
RUN = RunSpec(workload="ping-pong", params=PARAMS)
SPEC = SweepSpec(
    name="checkpointed",
    groups=[AxesGroup("ping-pong", params=dict(PARAMS))],
)


def _interrupt_run(checkpoint_dir: str, at_cycle: int) -> None:
    """Produce the on-disk state of a run killed at *at_cycle*: a checkpoint
    file, no result record."""
    with checkpoint_context(checkpoint_dir, snapshot_at=at_cycle,
                            stop_after_snapshot=True):
        with pytest.raises(SnapshotTaken):
            get_workload(RUN.workload).call(RUN.params)


class TestRunnerResume:
    def test_resumes_from_checkpoint_not_cycle_zero(self, tmp_path):
        reference = get_workload(RUN.workload).call(RUN.params)

        results_dir = str(tmp_path / "results")
        checkpoint_dir = os.path.join(results_dir, "checkpoints", RUN.run_id)
        _interrupt_run(checkpoint_dir, at_cycle=200)
        assert os.listdir(checkpoint_dir), "interruption left no checkpoint"

        logs = []
        runner = SweepRunner(results_dir, checkpoint_every=100, log=logs.append)
        result = runner.run(SPEC)
        assert result.ok
        record = result.records[0]
        assert record["metrics"] == reference
        assert record["tags"]["resumed_from_cycle"] == "200"
        assert any("resumed from cycle 200" in line for line in logs)

    def test_checkpoints_are_removed_after_completion(self, tmp_path):
        results_dir = str(tmp_path / "results")
        runner = SweepRunner(results_dir, checkpoint_every=50, log=lambda _: None)
        result = runner.run(SPEC)
        assert result.ok
        checkpoint_dir = os.path.join(results_dir, "checkpoints", RUN.run_id)
        assert not os.path.exists(checkpoint_dir)

    def test_checkpointing_does_not_change_results(self, tmp_path):
        reference = get_workload(RUN.workload).call(RUN.params)
        runner = SweepRunner(str(tmp_path / "results"), checkpoint_every=40,
                             log=lambda _: None)
        result = runner.run(SPEC)
        assert result.ok
        assert result.records[0]["metrics"] == reference

    def test_rejects_non_positive_interval(self, tmp_path):
        with pytest.raises(ValueError):
            SweepRunner(str(tmp_path), checkpoint_every=0)


class TestKillAndResume:
    """The real thing: a sweep subprocess is SIGKILLed mid-run and a second
    invocation finishes from the latest mid-run checkpoint."""

    ROUNDS = 1200
    CHECKPOINT_EVERY = 4000
    SPEC_DOC = {
        "name": "kill-resume",
        "groups": [{"workload": "ping-pong", "params": {"rounds": ROUNDS}}],
    }

    def test_kill_and_resume(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(self.SPEC_DOC))
        results_dir = str(tmp_path / "results")
        checkpoints_root = os.path.join(results_dir, "checkpoints")

        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        argv = [
            sys.executable, "-m", "repro.cli", "sweep",
            "--spec-file", str(spec_path),
            "--results-dir", results_dir,
            "--checkpoint-every", str(self.CHECKPOINT_EVERY),
        ]

        process = subprocess.Popen(argv, env=env, stdout=subprocess.DEVNULL,
                                   stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if any(
                    name.endswith(".json")
                    for _, _, names in os.walk(checkpoints_root)
                    for name in names
                ):
                    break
                if process.poll() is not None:
                    pytest.fail("sweep finished before a checkpoint appeared; "
                                "increase ROUNDS")
                time.sleep(0.02)
            else:
                pytest.fail("no checkpoint appeared within the deadline")
            process.send_signal(signal.SIGKILL)
        finally:
            process.wait(timeout=60)

        # No result record was produced by the killed run.
        runs_dir = os.path.join(results_dir, "runs")
        assert not os.path.exists(runs_dir) or not os.listdir(runs_dir)

        logs = []
        runner = SweepRunner(results_dir, checkpoint_every=self.CHECKPOINT_EVERY,
                             log=logs.append)
        spec = SweepSpec.from_dict(self.SPEC_DOC)
        result = runner.run(spec)
        assert result.ok

        record = result.records[0]
        resumed_from = int(record["tags"]["resumed_from_cycle"])
        assert resumed_from >= self.CHECKPOINT_EVERY, "resume started from cycle 0"

        reference = get_workload("ping-pong").call({"rounds": self.ROUNDS})
        assert record["metrics"] == reference
