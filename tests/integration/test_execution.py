"""Whole-machine integration tests of single-node execution: arithmetic,
control flow, memory operations, intra-node parallelism (H-Threads,
V-Threads, global CC registers) and exception behaviour."""

import pytest

from repro import MMachine, MachineConfig, EVENT_SLOT
from repro.cluster.hthread import ThreadState
from repro.workloads.microbench import (
    cc_barrier_programs,
    cc_loop_sync_programs,
    compute_loop_program,
    dependent_load_chain_program,
    build_pointer_chain,
)


HEAP = 0x10000


def single_node(**runtime_overrides):
    config = MachineConfig.single_node()
    for key, value in runtime_overrides.items():
        setattr(config.runtime, key, value)
    machine = MMachine(config)
    machine.map_on_node(0, HEAP, num_pages=16)
    return machine


class TestBasicExecution:
    def test_arithmetic_program(self):
        machine = single_node()
        machine.load_hthread(0, 0, 0, """
            mov i1, #6
            mov i2, #7
            mul i3, i1, i2
            add i3, i3, #1
            halt
        """)
        machine.run_until_user_done()
        assert machine.register_value(0, 0, 0, "i3") == 43

    def test_floating_point_program(self):
        machine = single_node()
        machine.load_hthread(0, 0, 0, """
            fmov f1, #1.5
            fmov f2, #2.0
            fmul f3, f1, f2
            fadd f3, f3, #0.5
            halt
        """)
        machine.run_until_user_done()
        assert machine.register_value(0, 0, 0, "f3") == pytest.approx(3.5)

    def test_loop_with_branch(self):
        machine = single_node()
        machine.load_hthread(0, 0, 0, compute_loop_program(10))
        machine.run_until_user_done()
        assert machine.register_value(0, 0, 0, "i5") == 30

    def test_brz_and_jmp(self):
        machine = single_node()
        machine.load_hthread(0, 0, 0, """
            mov i1, #0
            brz i1, taken
            mov i2, #111
            halt
taken:      mov i2, #222
            jmp finish
            mov i2, #333
finish:     halt
        """)
        machine.run_until_user_done()
        assert machine.register_value(0, 0, 0, "i2") == 222

    def test_load_store_roundtrip(self):
        machine = single_node()
        machine.write_word(HEAP + 4, 99)
        machine.load_hthread(0, 0, 0, """
            ld i2, i1, #4
            add i2, i2, #1
            st i2, i1, #5
            halt
        """, registers={"i1": HEAP})
        machine.run_until_user_done()
        assert machine.read_word(HEAP + 5) == 100

    def test_identity_registers(self):
        machine = single_node()
        machine.load_hthread(0, 2, 1, "mov i1, nid | mov i2, cid\nmov i3, vid\nhalt")
        machine.run_until_user_done()
        assert machine.register_value(0, 2, 1, "i1") == 0
        assert machine.register_value(0, 2, 1, "i2") == 1
        assert machine.register_value(0, 2, 1, "i3") == 2

    def test_three_wide_instruction_issues_together(self):
        machine = single_node()
        machine.write_word(HEAP, 5)
        machine.load_hthread(0, 0, 0, """
            add i2, i3, #1 | ld i4, i1 | fadd f2, f3, #1.0
            halt
        """, registers={"i1": HEAP, "i3": 10, "f3": 2.0})
        machine.run_until_user_done()
        assert machine.register_value(0, 0, 0, "i2") == 11
        assert machine.register_value(0, 0, 0, "i4") == 5
        assert machine.register_value(0, 0, 0, "f2") == pytest.approx(3.0)

    def test_running_off_program_end_halts(self):
        machine = single_node()
        machine.load_hthread(0, 0, 0, "add i1, i1, #1")
        machine.run_until_user_done()
        assert machine.thread_halted(0, 0, 0)

    def test_mark_operation_traced(self):
        machine = single_node()
        machine.load_hthread(0, 0, 0, "mark #7\nhalt")
        machine.run_until_user_done()
        marks = machine.tracer.filter("mark")
        assert marks and marks[0].marker == 7

    def test_load_latency_is_three_cycles_on_hit(self):
        """Table 1: local cache hit read = 3 cycles (dependent instruction
        issues three cycles after the load)."""
        machine = single_node()
        machine.write_word(HEAP, HEAP)   # the word points at itself
        machine.load_hthread(0, 0, 0, """
            ld i2, i1
            ld i3, i2
            halt
        """, registers={"i1": HEAP})
        machine.run_until_user_done()
        issues = [event for event in machine.tracer.filter("mem_issue", node=0)]
        writes = [event for event in machine.tracer.filter("reg_write", node=0)
                  if event.info["reg"] == "i3"]
        # The second load (issued only once the first completed) hits in the
        # cache line the first load brought in.
        assert writes[0].cycle - issues[1].cycle == 3


class TestIntraNodeParallelism:
    def test_inter_cluster_register_write(self):
        machine = single_node()
        machine.load_vthread(0, 0, {
            0: "mov c1.i4, #55\nhalt",
            1: "empty i4\nmov i5, i4\nhalt",
        })
        machine.run_until_user_done()
        assert machine.register_value(0, 0, 1, "i5") == 55

    def test_receiver_blocks_until_transfer_arrives(self):
        machine = single_node()
        machine.load_vthread(0, 0, {
            0: "mov i1, #0\n" + "add i1, i1, #1\n" * 10 + "mov c1.i4, i1\nhalt",
            1: "empty i4\nmov i5, i4\nhalt",
        })
        machine.run_until_user_done()
        assert machine.register_value(0, 0, 1, "i5") == 10

    def test_gcc_broadcast_visible_on_all_clusters(self):
        machine = single_node()
        programs = {0: "mov gcc1, #1\nhalt"}
        for cluster in (1, 2, 3):
            programs[cluster] = "empty gcc1\nmov i5, gcc1\nhalt"
        machine.load_vthread(0, 0, programs)
        machine.run_until_user_done()
        for cluster in (1, 2, 3):
            assert machine.register_value(0, 0, cluster, "i5") == 1

    def test_figure6_loop_synchronisation(self):
        machine = single_node()
        machine.load_vthread(0, 0, cc_loop_sync_programs(8))
        machine.run_until_user_done(max_cycles=20000)
        assert machine.register_value(0, 0, 0, "i2") == 8
        assert machine.register_value(0, 0, 1, "i2") == 8
        assert machine.thread_halted(0, 0, 0) and machine.thread_halted(0, 0, 1)

    def test_four_way_cc_barrier(self):
        machine = single_node()
        machine.load_vthread(0, 0, cc_barrier_programs(6))
        machine.run_until_user_done(max_cycles=40000)
        for cluster in range(4):
            assert machine.register_value(0, 0, cluster, "i2") == 6

    def test_vthreads_share_cluster(self):
        machine = single_node()
        machine.load_hthread(0, 0, 0, compute_loop_program(20))
        machine.load_hthread(0, 1, 0, compute_loop_program(20))
        machine.run_until_user_done(max_cycles=20000)
        assert machine.register_value(0, 0, 0, "i5") == 60
        assert machine.register_value(0, 1, 0, "i5") == 60
        # Both ran on cluster 0 by interleaving, so issue counts are split.
        by_slot = machine.nodes[0].clusters[0].issue_by_slot
        assert by_slot[0] > 0 and by_slot[1] > 0

    def test_vthread_interleaving_masks_memory_latency(self):
        """Two pointer-chasing threads finish in much less than twice the
        time of one, because the cluster issues the other thread's loads
        while one waits (Section 3.2)."""
        chain_words = build_pointer_chain(length=16, base_address=HEAP, stride=8)

        def run(num_threads):
            machine = single_node()
            for address, value in chain_words:
                machine.write_word(address, value)
            for slot in range(num_threads):
                machine.load_hthread(0, slot, 0, dependent_load_chain_program(16),
                                     registers={"i1": HEAP})
            machine.run_until_user_done(max_cycles=40000)
            return machine.cycle

        one = run(1)
        two = run(2)
        assert two < 2 * one * 0.8

    def test_single_thread_issues_every_cycle_with_default_policy(self):
        machine = single_node()
        machine.load_hthread(0, 0, 0, "\n".join(["add i1, i1, #1"] * 20 + ["halt"]))
        machine.run_until_user_done()
        cluster = machine.nodes[0].clusters[0]
        context = cluster.context(0)
        # 21 instructions in at most a couple of cycles more than 21.
        assert context.instructions_issued == 21
        assert context.halt_cycle - context.start_cycle <= 22

    def test_hep_policy_degrades_single_thread(self):
        """Section 3.4: HEP/MASA-style barrel scheduling degrades single
        thread performance; the MAP's zero-cost interleaving does not."""
        def run(policy):
            config = MachineConfig.single_node()
            config.cluster.issue_policy = policy
            machine = MMachine(config)
            machine.load_hthread(0, 0, 0, compute_loop_program(50))
            machine.run_until_user_done(max_cycles=40000)
            return machine.cycle

        assert run("hep") > 2 * run("event-priority")


class TestExceptions:
    def test_divide_by_zero_faults_thread(self):
        machine = single_node()
        machine.load_hthread(0, 0, 0, "mov i1, #0\ndiv i2, i3, i1\nhalt",
                             registers={"i3": 5})
        machine.run_until_quiescent()
        context = machine.nodes[0].context(0, 0)
        assert context.state is ThreadState.FAULTED
        assert machine.nodes[0].exception_queues[0].pending_records == 1

    def test_privileged_op_from_user_slot_faults(self):
        machine = single_node()
        machine.load_hthread(0, 0, 0, "xregwr i1, i2\nhalt")
        machine.run_until_quiescent()
        assert machine.nodes[0].context(0, 0).state is ThreadState.FAULTED
        assert machine.tracer.count("exception") == 1

    def test_privileged_op_allowed_in_event_slot(self):
        machine = single_node()
        # Use an unused event-slot H-Thread (cluster 0 has no handler program
        # loaded in 'remote' mode on a single-node machine? it does not --
        # cluster 0 hosts the native sync handler, which is not a program).
        machine.load_hthread(0, EVENT_SLOT, 0, "gprobe i1, i2\nhalt",
                             registers={"i2": HEAP})
        machine.run_until_quiescent()
        assert machine.register_value(0, EVENT_SLOT, 0, "i1") == 0

    def test_gcc_pair_violation_faults(self):
        machine = single_node()
        # Cluster 0 may only broadcast to gcc0/gcc1.
        machine.load_hthread(0, 0, 0, "mov gcc4, #1\nhalt")
        machine.run_until_quiescent()
        assert machine.nodes[0].context(0, 0).state is ThreadState.FAULTED

    def test_sync_load_blocks_until_producer_stores(self):
        """Producer/consumer through the per-word synchronization bit: the
        consumer's ld.ff faults until the producer's st.xf sets the bit; the
        default sync-fault handler retries it."""
        machine = single_node()
        machine.write_word(HEAP + 32, 0, sync_bit=0)
        machine.load_hthread(0, 0, 0, """
            ld.ff i5, i1
            halt
        """, registers={"i1": HEAP + 32})
        machine.load_hthread(0, 1, 0, """
            mov i2, #0
wait:       add i2, i2, #1
            lt i3, i2, #40
            br i3, wait
            st.xf i4, i1
            halt
        """, registers={"i1": HEAP + 32, "i4": 1234})
        machine.run_until_user_done(max_cycles=40000)
        assert machine.register_value(0, 0, 0, "i5") == 1234
        assert machine.nodes[0].memory.sync_faults >= 1
