"""End-to-end guarantees of the disk trace sink on real runs.

Three properties that together make ``--trace-dir`` safe for
million-cycle runs (scaled down here to event-count-equivalent sizes so
the suite stays fast):

* a long streaming run records a byte-identical event stream to the
  in-memory reference while never buffering more than one chunk;
* the paper's analyses (the Figure 9 timeline, the Table 1 latency
  measurements) compute identical numbers from either sink — including
  from a trace directory reopened after the run with ``Tracer.open``;
* a snapshot taken mid-run round-trips the disk sink: a machine rebuilt
  from the snapshot appends to the same trace directory, truncating any
  post-snapshot chunks, and the final stream is byte-identical to an
  uninterrupted run.
"""

import json

from repro import MMachine, MachineConfig
from repro.analysis.latency import measure_load_latency
from repro.analysis.timeline import extract_remote_access_timeline
from repro.core.trace import Tracer, encode_event

REGION = 0x40000


def _stream(tracer):
    return [
        json.dumps(encode_event(event), sort_keys=True)
        for event in tracer.iter_filter()
    ]


def _message_stream_machine(count, trace_dir=None, chunk_events=128):
    from repro.workloads.synthetic import remote_store_sender_program

    config = MachineConfig.small(2, 1, 1)
    if trace_dir is not None:
        config.trace_dir = str(trace_dir)
        config.trace_chunk_events = chunk_events
    machine = MMachine(config)
    far = machine.num_nodes - 1
    machine.map_on_node(far, REGION, num_pages=1)
    dip = machine.runtime.dip("remote_store")
    machine.load_hthread(0, 0, 0, remote_store_sender_program(REGION, dip, count))
    return machine


def test_long_streaming_run_matches_memory_run(tmp_path):
    """A sustained message stream (the event-count-equivalent of a
    million-cycle run) through the disk sink: bounded buffering, many
    chunks, and the exact event stream of the in-memory reference."""
    reference = _message_stream_machine(256)
    reference.run_until_user_done(max_cycles=500_000)

    streamed = _message_stream_machine(256, trace_dir=tmp_path / "t")
    streamed.run_until_user_done(max_cycles=500_000)

    assert streamed.cycle == reference.cycle
    sink = streamed.tracer.sink
    assert sink.kind == "disk"
    assert sink.peak_tail_events <= 128
    assert sink.stats()["chunks"] >= 5
    assert len(streamed.tracer) == len(reference.tracer)
    assert _stream(streamed.tracer) == _stream(reference.tracer)

    # The same stream again, out-of-core from the closed directory.
    reopened = Tracer.open(tmp_path / "t")
    assert _stream(reopened) == _stream(reference.tracer)
    assert reopened.count("send") == reference.tracer.count("send")
    assert reopened.first("send").cycle == reference.tracer.first("send").cycle
    assert reopened.last("msg_deliver").cycle == reference.tracer.last("msg_deliver").cycle


def _remote_read_machine(trace_dir=None):
    config = MachineConfig.small(2, 1, 1)
    if trace_dir is not None:
        config.trace_dir = str(trace_dir)
        config.trace_chunk_events = 32
    machine = MMachine(config)
    machine.map_on_node(1, REGION, num_pages=1)
    machine.write_word(REGION, 11)
    machine.load_hthread(0, 0, 0, "ld i5, i1\nhalt", registers={"i1": REGION})
    machine.run_until(lambda m: m.register_full(0, 0, 0, "i5"), max_cycles=10_000)
    return machine


def test_analyses_are_sink_independent(tmp_path):
    """Figure 9 timelines and Table 1 latencies must not depend on where
    the trace lives: memory sink, live disk sink, and a reopened trace
    directory all produce identical numbers."""
    memory = _remote_read_machine()
    disk = _remote_read_machine(trace_dir=tmp_path / "t")
    tracers = {
        "memory": memory.tracer,
        "disk": disk.tracer,
        "reopened": Tracer.open(tmp_path / "t"),
    }
    timelines = {
        name: extract_remote_access_timeline(tracer, "read", address=REGION).to_records()
        for name, tracer in tracers.items()
    }
    assert timelines["disk"] == timelines["memory"]
    assert timelines["reopened"] == timelines["memory"]
    assert timelines["memory"], "timeline extraction found no milestones"

    latencies = {
        name: measure_load_latency(tracer, node=0, slot=0, cluster=0)
        for name, tracer in tracers.items()
    }
    assert latencies["disk"] == latencies["memory"]
    assert latencies["reopened"] == latencies["memory"]
    assert latencies["memory"] > 0


def test_snapshot_resume_appends_to_same_trace(tmp_path):
    """Kill-and-resume over the disk sink: snapshot mid-run, let the
    original machine run on (writing chunks the snapshot does not know
    about), then rebuild from the snapshot.  The restored machine must
    re-attach to the snapshot's own trace directory, truncate the
    post-snapshot chunks, and append — ending with the exact stream (and
    event ids) of an uninterrupted run."""
    reference = _message_stream_machine(64, trace_dir=tmp_path / "ref", chunk_events=32)
    reference.run_until_user_done(max_cycles=500_000)
    reference_stream = _stream(Tracer.open(tmp_path / "ref"))
    assert len(reference_stream) == len(reference.tracer)

    victim = _message_stream_machine(64, trace_dir=tmp_path / "run", chunk_events=32)
    victim.run(400)
    still_running = not all(node.user_threads_finished for node in victim.nodes)
    assert still_running, "snapshot point is past completion"
    snapshot_path = str(tmp_path / "mid.json")
    victim.save_snapshot(snapshot_path)
    # The doomed continuation: chunks on disk the snapshot never saw.
    victim.run(400)
    assert len(Tracer.open(tmp_path / "run")) > 0

    resumed = MMachine.from_snapshot(snapshot_path)
    assert resumed.tracer.sink.kind == "disk"
    assert resumed.tracer.sink.directory.startswith(str(tmp_path / "run"))
    assert resumed.cycle == 400
    resumed.run_until_user_done(max_cycles=500_000)

    assert resumed.cycle == reference.cycle
    resumed_stream = _stream(Tracer.open(tmp_path / "run"))
    assert resumed_stream == reference_stream
