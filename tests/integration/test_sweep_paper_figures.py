"""Acceptance: ``repro sweep paper-figures --jobs 4`` completes, matches the
benchmarks' cycle counts, and resumes without re-executing anything.

The benchmark suite runs its scenarios through the same workload factories
(``benchmarks/conftest.py::run_and_record``), so equality against fresh
in-process factory runs is exactly equality against the pytest benchmarks —
and because the sweep executes in worker *processes*, this also checks that
the simulator is deterministic across process boundaries.
"""

import json

import pytest

from repro.api import get_workload
from repro.cli import main
from repro.sweep import get_spec, validate_results
from repro.sweep.runner import RESULTS_FILENAME

#: (workload, params) pairs re-run in-process for the cycle-count comparison;
#: a representative of every machine-driving figure and ablation.
CHECKED = [
    ("stencil", {"kind": "7pt", "n_hthreads": 1}),
    ("stencil", {"kind": "27pt", "n_hthreads": 4}),
    ("cc-sync", {"iterations": 50}),
    ("cc-barrier", {"iterations": 50, "clusters": 4}),
    ("remote-store-latency", {}),
    ("message-stream", {"count": 64}),
    ("ping-pong", {"rounds": 16}),
    ("remote-access-timeline", {"kind": "read"}),
    ("vthread-interleave", {"num_threads": 4}),
    ("issue-policy", {"policy": "hep"}),
    ("remote-memory", {"mode": "remote", "repeats": 16}),
    ("remote-memory", {"mode": "coherent", "repeats": 16}),
    ("flood", {"messages": 24, "send_credits": 2}),
    ("many-to-one-flood", {"queue_words": 6}),
]


@pytest.fixture(scope="module")
def sweep_results(tmp_path_factory):
    results_dir = tmp_path_factory.mktemp("paper-figures")
    exit_code = main(["sweep", "paper-figures", "--jobs", "4",
                      "--results-dir", str(results_dir)])
    document = json.loads((results_dir / RESULTS_FILENAME).read_text())
    return {"exit_code": exit_code, "results_dir": results_dir,
            "document": document}


def test_sweep_completes_and_validates(sweep_results):
    assert sweep_results["exit_code"] == 0
    document = sweep_results["document"]
    assert validate_results(document) == []
    assert document["counts"]["total"] == len(get_spec("paper-figures").expand())
    assert document["counts"]["failed"] == 0


def test_sweep_cycle_counts_match_benchmark_runs(sweep_results):
    by_id = {record["run_id"]: record
             for record in sweep_results["document"]["runs"]}
    from repro.sweep.spec import RunSpec

    for workload, params in CHECKED:
        run_id = RunSpec(workload=workload, params=params).run_id
        assert run_id in by_id, f"paper-figures is missing {workload} {params}"
        sweep_metrics = by_id[run_id]["metrics"]
        bench_metrics = get_workload(workload).call(params)
        assert sweep_metrics["cycles"] == bench_metrics["cycles"], (workload, params)
        assert sweep_metrics == bench_metrics, (workload, params)


def test_reinvocation_skips_all_completed_runs(sweep_results):
    exit_code = main(["sweep", "paper-figures", "--jobs", "4",
                      "--results-dir", str(sweep_results["results_dir"])])
    assert exit_code == 0
    document = json.loads(
        (sweep_results["results_dir"] / RESULTS_FILENAME).read_text()
    )
    total = document["counts"]["total"]
    assert document["counts"]["reused"] == total
    assert document["counts"]["executed"] == 0
    # Identical records to the first invocation (loaded from disk).
    assert document["runs"] == sweep_results["document"]["runs"]
