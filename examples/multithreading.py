"""Section 3 scenario: intra-node concurrency mechanisms.

Shows the three intra-node mechanisms of the paper working together on one
MAP node:

* V-Thread interleaving masking memory latency (several pointer-chasing
  threads share one cluster with zero switch cost),
* H-Thread synchronisation through registers and the global condition-code
  registers (the interlocked loop of Figure 6), and
* the comparison with HEP-style barrel scheduling (Section 3.4).

Run with::

    python examples/multithreading.py
"""

from repro import MMachine, MachineConfig, format_table
from repro.workloads.microbench import (
    build_pointer_chain,
    cc_loop_sync_programs,
    compute_loop_program,
    dependent_load_chain_program,
)

HEAP = 0x10000


def latency_tolerance():
    rows = []
    for threads in (1, 2, 4):
        machine = MMachine(MachineConfig.single_node())
        machine.map_on_node(0, HEAP, num_pages=4)
        for address, value in build_pointer_chain(32, HEAP, stride=16):
            machine.write_word(address, value)
        for slot in range(threads):
            machine.load_hthread(0, slot, 0, dependent_load_chain_program(24),
                                 registers={"i1": HEAP})
        machine.run_until_user_done(max_cycles=100000)
        rows.append([threads, machine.cycle, round(24 * threads / machine.cycle, 3)])
    return format_table(["V-Threads", "cycles", "loads per cycle"], rows,
                        title="V-Thread interleaving hiding memory latency (one cluster)")


def figure6_sync():
    machine = MMachine(MachineConfig.single_node())
    machine.load_vthread(0, 0, cc_loop_sync_programs(100))
    machine.run_until_user_done(max_cycles=100000)
    return (f"Figure 6 interlocked loop: 100 iterations in {machine.cycle} cycles "
            f"({machine.cycle / 100:.1f} cycles/iteration), both H-Threads finished "
            f"with i2 = {machine.register_value(0, 0, 0, 'i2')}")


def scheduling_policies():
    rows = []
    for policy in ("event-priority", "round-robin", "hep"):
        config = MachineConfig.single_node()
        config.cluster.issue_policy = policy
        machine = MMachine(config)
        machine.load_hthread(0, 0, 0, compute_loop_program(200))
        machine.run_until_user_done(max_cycles=100000)
        rows.append([policy, machine.cycle])
    return format_table(["issue policy", "cycles (single thread, 200-iteration loop)"], rows,
                        title="Zero-cost interleaving vs HEP-style barrel scheduling")


def main() -> None:
    print(latency_tolerance())
    print()
    print(figure6_sync())
    print()
    print(scheduling_policies())


if __name__ == "__main__":
    main()
