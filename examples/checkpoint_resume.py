"""Checkpoint/resume walkthrough: snapshot a running machine, restore it,
and prove the resumed run is bit-exact.

Builds a two-node machine running a chain of dependent remote reads, runs it
halfway, snapshots it to a file, restores the snapshot into a brand-new
machine (as a fresh process would), finishes both, and compares final cycle
counts and statistics.  Also demonstrates the warm-start fan-out: the same
snapshot driven by several measurement runs.  Run with::

    python examples/checkpoint_resume.py
"""

import os
import tempfile

from repro import MMachine, MachineConfig
from repro.snapshot import fan_out

REGION = 0x40000
REPEATS = 12


def build_machine() -> MMachine:
    config = MachineConfig.small(2, 1, 1)
    machine = MMachine(config)
    # The word lives on node 1; node 0 reads it repeatedly, paying a full
    # network round trip per iteration -- a long-running workload in miniature.
    machine.map_on_node(1, REGION, num_pages=1)
    machine.write_word(REGION, 5)
    machine.load_hthread(
        node_id=0,
        slot=0,
        cluster=0,
        program=f"""
            mov  i3, #0
            mov  i5, #0
    loop:   ld   i4, i1           ; remote load
            add  i5, i5, i4
            add  i3, i3, #1
            lt   i6, i3, #{REPEATS}
            br   i6, loop
            halt
        """,
        registers={"i1": REGION},
    )
    return machine


def main() -> None:
    snapshot_path = os.path.join(tempfile.mkdtemp(), "warm.json")

    # --- run halfway and snapshot -------------------------------------------
    machine = build_machine()
    machine.run(300)
    machine.save_snapshot(snapshot_path)
    print(f"snapshot at cycle {machine.cycle} -> {snapshot_path} "
          f"({os.path.getsize(snapshot_path)} bytes)")

    # Snapshotting does not perturb the original: finish it normally.
    machine.run_until_user_done()
    print(f"original run finished at cycle {machine.cycle}")

    # --- restore and finish --------------------------------------------------
    # MMachine.from_snapshot rebuilds the machine from the configuration
    # embedded in the file, then loads the state; this works identically in
    # a completely fresh process (see `repro resume`).
    restored = MMachine.from_snapshot(snapshot_path)
    print(f"restored machine resumes at cycle {restored.cycle}")
    restored.run_until_user_done()
    print(f"restored run finished at cycle {restored.cycle}")

    assert restored.cycle == machine.cycle
    assert restored.stats().summary() == machine.stats().summary()
    assert restored.register_value(0, 0, 0, "i5") == 5 * REPEATS
    print("resumed run is bit-exact (same final cycle, same statistics)")

    # --- warm-start fan-out --------------------------------------------------
    # One warmed-up state, several measurement runs: every leg restores the
    # same snapshot, so the warm-up cost is paid exactly once.
    legs = fan_out(snapshot_path, runs=3)
    for index, leg in enumerate(legs):
        print(f"measurement leg {index}: cycles {leg['resumed_from_cycle']}"
              f" -> {leg['cycles']}")
    assert legs[0] == legs[1] == legs[2]

    # Restoring into a differently-configured machine is refused.
    from repro.snapshot import ConfigMismatchError, read_snapshot

    other = MMachine(MachineConfig.small(2, 2, 1))
    try:
        other.restore_snapshot(read_snapshot(snapshot_path))
    except ConfigMismatchError as error:
        print(f"config mismatch correctly refused: {error}")


if __name__ == "__main__":
    main()
