"""Section 4 scenario: transparent access to remote memory.

A user thread on node 0 loads and stores words that are homed on node 1,
with no special code at all -- the LTLB-miss handler, the message handlers
and (optionally) the DRAM-caching coherence layer do the work, exactly as in
Sections 4.2 and 4.3 of the paper.  The example runs the same program under
both runtimes and prints the latency difference and the Figure 9-style
timeline of one remote read.

Run with::

    python examples/remote_memory.py
"""

from repro import MMachine, MachineConfig, format_table
from repro.analysis.timeline import extract_remote_access_timeline

REGION = 0x40000
WORDS = 8


def run(mode: str):
    config = MachineConfig.small(2, 1, 1)
    config.runtime.shared_memory_mode = mode
    machine = MMachine(config)
    machine.map_on_node(1, REGION, num_pages=1)          # homed on node 1
    for index in range(WORDS):
        machine.write_word(REGION + index, 100 + index)

    # Node 0 sums eight remote words and writes the total back -- ordinary
    # loads and stores; the runtime makes them remote transparently.
    machine.load_hthread(0, 0, 0, f"""
        mov i3, #0              ; index
        mov i5, #0              ; sum
loop:   ld  i4, i1              ; load a remote word
        add i5, i5, i4
        add i1, i1, #1
        add i3, i3, #1
        lt  i6, i3, #{WORDS}
        br  i6, loop
        st  i5, i2              ; store the total (also remote)
        halt
    """, registers={"i1": REGION, "i2": REGION + 64})
    machine.run_until_user_done(max_cycles=200000)
    total = machine.nodes[1].memory.debug_read(REGION + 64) if mode == "remote" \
        else machine.nodes[0].memory.debug_read(REGION + 64)
    return machine, total


def main() -> None:
    expected = sum(100 + index for index in range(WORDS))
    rows = []
    for mode, label in (("remote", "Section 4.2: non-cached remote access"),
                        ("coherent", "Section 4.3: DRAM caching of remote blocks")):
        machine, total = run(mode)
        assert total == expected, (mode, total, expected)
        rows.append([label, machine.cycle,
                     machine.nodes[0].net.messages_sent + machine.nodes[1].net.messages_sent])
    print(format_table(["runtime", "cycles", "messages"], rows,
                       title=f"Summing {WORDS} remote words and storing the total"))

    # A single remote read, step by step (Figure 9).
    machine = MMachine(MachineConfig.small(2, 1, 1))
    machine.map_on_node(1, REGION, num_pages=1)
    machine.write_word(REGION, 7)
    machine.load_hthread(0, 0, 0, "ld i5, i1\nhalt", registers={"i1": REGION})
    machine.run_until(lambda m: m.register_full(0, 0, 0, "i5"), max_cycles=10000)
    print()
    print(extract_remote_access_timeline(machine.tracer, "read"))


if __name__ == "__main__":
    main()
