"""Figure 5 scenario: the 7-point and 27-point stencil smoothing kernels run
on 1, 2 and 4 H-Threads of one MAP node.

The example mirrors the paper's motivating workload (Section 3.1): the same
grid-point update is scheduled over a varying number of H-Threads, the static
instruction depth shrinks as in Figure 5, and the simulator reports the
dynamic cycle counts and verifies the numerical result.

Run with::

    python examples/stencil_smoothing.py
"""

from repro import MMachine, MachineConfig, format_table
from repro.workloads.stencil import make_stencil_workload

HEAP = 0x10000


def run_one(kind: str, n_hthreads: int):
    machine = MMachine(MachineConfig.single_node())
    machine.map_on_node(0, HEAP, num_pages=16)
    workload = make_stencil_workload(kind=kind, n_hthreads=n_hthreads)
    workload.setup(machine)
    machine.run_until_user_done(max_cycles=30000)
    assert workload.verify(machine), "numerical mismatch"
    return workload, machine


def main() -> None:
    rows = []
    for kind in ("7pt", "27pt"):
        for n_hthreads in (1, 2, 4):
            workload, machine = run_one(kind, n_hthreads)
            rows.append([
                kind,
                n_hthreads,
                workload.max_static_depth,
                machine.cycle,
                round(workload.result(machine), 6),
            ])
    print(format_table(
        ["stencil", "H-Threads", "static depth", "dynamic cycles", "u* value"],
        rows,
        title="Stencil smoothing on one MAP node (Figure 5 scenario)",
    ))
    print()
    print("Hand-scheduled code of the two-H-Thread 7-point kernel (Figure 5(b)):")
    workload = make_stencil_workload(kind="7pt", n_hthreads=2)
    for cluster, program in sorted(workload.programs.items()):
        print(f"\n--- cluster {cluster} ---")
        print(program.listing())


if __name__ == "__main__":
    main()
