"""Quickstart: build a small M-Machine, run a program, look at the results.

Builds a two-node machine (2x1x1 mesh), maps a page of the global address
space on node 0, runs a tiny read-modify-write program on one H-Thread, and
prints the machine statistics.  Run with::

    python examples/quickstart.py
"""

from repro import MMachine, MachineConfig

HEAP = 0x10000


def main() -> None:
    config = MachineConfig.small(2, 1, 1)
    machine = MMachine(config)

    # Map one page of the flat global virtual address space onto node 0 and
    # initialise a word.
    machine.map_on_node(0, HEAP, num_pages=1)
    machine.write_word(HEAP, 41)

    # A three-instruction H-Thread: load, increment, store.
    machine.load_hthread(
        node_id=0,
        slot=0,
        cluster=0,
        program="""
            ld   i2, i1          ; load the word
            add  i2, i2, #1      ; increment it
            st   i2, i1          ; store it back
            halt
        """,
        registers={"i1": HEAP},
    )

    machine.run_until_user_done()

    print(f"memory word after the run : {machine.read_word(HEAP)}")
    print(f"cycles simulated          : {machine.cycle}")
    stats = machine.stats()
    print(f"instructions issued       : {stats.total_instructions}")
    print(f"cache hit rate            : {stats.cache_hit_rate:.2f}")
    print()
    print("Per-node summary:")
    for node_stats in stats.node_stats:
        issued = sum(cluster["instructions_issued"] for cluster in node_stats["clusters"])
        print(f"  node {node_stats['node_id']} at {node_stats['coords']}: "
              f"{issued} instructions, {node_stats['messages_sent']} messages sent")

    assert machine.read_word(HEAP) == 42


if __name__ == "__main__":
    main()
