"""Quickstart: define a workload, build an Experiment, inspect the RunResult.

Defines a tiny read-modify-write workload with the ``@workload`` decorator
(unregistered — it stays local to this script), binds it to a two-node
machine through the fluent ``Experiment`` builder, runs it, and prints the
structured result.  Run with::

    python examples/quickstart.py
"""

from repro import Experiment, MMachine, MachineConfig, workload

HEAP = 0x10000


@workload("quickstart-increment", section="Section 2", register=False)
def increment(mesh=(2, 1, 1), kernel="event"):
    """Load a word, increment it, store it back — on one H-Thread."""
    config = MachineConfig.small(*mesh)
    config.sim.kernel = kernel
    machine = MMachine(config)

    # Map one page of the flat global virtual address space onto node 0 and
    # initialise a word.
    machine.map_on_node(0, HEAP, num_pages=1)
    machine.write_word(HEAP, 41)

    # A three-instruction H-Thread: load, increment, store.
    machine.load_hthread(
        node_id=0,
        slot=0,
        cluster=0,
        program="""
            ld   i2, i1          ; load the word
            add  i2, i2, #1      ; increment it
            st   i2, i1          ; store it back
            halt
        """,
        registers={"i1": HEAP},
    )

    machine.run_until_user_done()
    stats = machine.stats()
    return {
        "verified": machine.read_word(HEAP) == 42,
        "cycles": machine.cycle,
        "instructions": stats.total_instructions,
        "cache_hit_rate": round(stats.cache_hit_rate, 2),
        "result_word": machine.read_word(HEAP),
    }


def main() -> None:
    with (
        Experiment.builder()
        .workload(increment)
        .mesh(2, 1, 1)
        .kernel("event")
        .build()
    ) as experiment:
        result = experiment.run()

    print(f"memory word after the run : {result.metrics['result_word']}")
    print(f"cycles simulated          : {result.cycles}")
    print(f"instructions issued       : {result.metrics['instructions']}")
    print(f"cache hit rate            : {result.metrics['cache_hit_rate']:.2f}")
    print(f"simulation kernel         : {result.provenance.kernel}")
    print(f"config fingerprint        : {result.fingerprint}")
    print(f"run id                    : {result.run_id}")

    assert result.verified
    assert result.status == "ok"

    # The same result serialises to the sweep-record schema, so anything a
    # sweep produces, this script's run can be merged and compared with.
    record = result.to_record()
    assert record["workload"] == "quickstart-increment"


if __name__ == "__main__":
    main()
