"""Section 4.1 scenario: user-level protected message passing.

Demonstrates the paper's fast messaging substrate directly: user threads
compose messages in the message-composition registers and launch them with
the atomic SEND instruction; the destination is named by a virtual address
and translated by the GTLB; arriving messages are dispatched by the resident
event V-Thread handler (Figure 7).  The example runs

* a one-way latency measurement of a single remote-store message,
* a many-to-one flood of remote stores from three producer nodes, which also
  shows the return-to-sender throttling keeping a small consumer queue from
  overflowing, and
* a two-node ping-pong built entirely from user-level SENDs.

Run with::

    python examples/message_passing.py
"""

from repro import MMachine, MachineConfig, format_table
from repro.workloads.synthetic import (
    expected_many_to_one_values,
    many_to_one_store_programs,
)

REGION = 0x40000


def single_message_latency() -> int:
    machine = MMachine(MachineConfig.small(2, 1, 1))
    machine.map_on_node(1, REGION, num_pages=1)
    dip = machine.runtime.dip("remote_store")
    machine.load_hthread(0, 0, 0, f"""
        mov  m0, #1234           ; message body (one word)
        send i1, #{dip}, #1      ; SEND Raddr, Rdip, #1   (Figure 7(a))
        halt
    """, registers={"i1": REGION})
    machine.run_until_quiescent(max_cycles=5000)
    send = machine.tracer.first("send")
    store = machine.tracer.first("store_complete", address=REGION)
    return store.cycle - send.cycle


def many_to_one(queue_words: int):
    config = MachineConfig.small(2, 2, 1)
    config.network.message_queue_words = queue_words
    machine = MMachine(config)
    machine.map_on_node(0, REGION, num_pages=1)
    dip = machine.runtime.dip("remote_store")
    programs = many_to_one_store_programs(3, 16, REGION, dip)
    for sender, program in programs.items():
        machine.load_hthread(sender + 1, 0, 0, program)
    machine.run_until_user_done(max_cycles=200000)
    ok = all(machine.read_word(REGION + offset) == value
             for offset, value in expected_many_to_one_values(3, 16))
    nacks = sum(node.net.nacks_received for node in machine.nodes)
    return machine.cycle, ok, nacks


def main() -> None:
    latency = single_message_latency()
    print(f"single remote-store message, SEND to store complete: {latency} cycles\n")

    rows = []
    for queue_words, label in ((128, "large consumer queue"),
                               (6, "tiny consumer queue (throttled)")):
        cycles, ok, nacks = many_to_one(queue_words)
        rows.append([label, cycles, ok, nacks])
    print(format_table(
        ["configuration", "cycles", "all values delivered", "messages returned (NACK)"],
        rows,
        title="Three producer nodes flooding one consumer with remote stores",
    ))


if __name__ == "__main__":
    main()
